// Package anneal is the quantum-annealer substitute of this reproduction:
// a simulated-annealing Ising sampler that executes on the *embedded*
// hardware graph, exactly as the paper's own noise-free simulator (built on
// D-Wave's neal sampler) does. Logical problems are mapped onto qubit chains
// (ferromagnetic intra-chain couplers, h and J split across chain qubits and
// inter-chain couplers), samples are drawn with Metropolis sweeps under a
// geometric β schedule, chains are read back by majority vote, and an
// optional noise model reproduces the error processes of real hardware:
// Gaussian programming error on coefficients, per-qubit readout flips, and
// truncated schedules that get trapped in local minima.
//
// Sampling is batched the way the real device is used: Sampler.Sample draws
// many reads from one programmed problem across a worker pool, with each
// read's RNG stream derived from (seed, call, read) so results are
// bit-identical regardless of worker count. The sweep kernel itself
// (SampleInto) runs allocation-free in steady state against the flattened,
// read-only structures EmbedIsing precomputes on EmbeddedProblem.
//
// Wall-clock device time is *modelled*, not measured: TimingModel charges
// the D-Wave 2000Q datasheet costs per sample, which is how the paper
// composes its end-to-end numbers too.
package anneal

import (
	"math"
	"sort"

	"hyqsat/internal/embed"
	"hyqsat/internal/qubo"
	"hyqsat/internal/topo"
)

// Noise configures the hardware error model.
type Noise struct {
	// CoefficientSigma is the standard deviation of the Gaussian programming
	// error applied to every h and J, relative to the largest coefficient
	// magnitude. D-Wave 2000Q integrated control errors are a few percent.
	CoefficientSigma float64
	// ReadoutFlipProb is the probability that a qubit's measured value is
	// flipped at readout.
	ReadoutFlipProb float64
}

// NoNoise is the noise-free simulator configuration.
var NoNoise = Noise{}

// DWave2000QNoise approximates the error magnitudes of the real device.
var DWave2000QNoise = Noise{CoefficientSigma: 0.03, ReadoutFlipProb: 0.01}

// Schedule is the annealing schedule: Sweeps full Metropolis passes with
// inverse temperature rising geometrically from BetaMin to BetaMax.
type Schedule struct {
	Sweeps  int
	BetaMin float64
	BetaMax float64
}

// DefaultSchedule mirrors the neal sampler defaults at a sweep count that
// behaves like a fast hardware anneal.
func DefaultSchedule() Schedule { return Schedule{Sweeps: 64, BetaMin: 0.1, BetaMax: 32} }

// LongSchedule is the "long timeout" schedule the paper uses for its
// noise-free simulator, converging far more reliably.
func LongSchedule() Schedule { return Schedule{Sweeps: 512, BetaMin: 0.05, BetaMax: 64} }

// EmbeddedProblem is a logical Ising model programmed onto hardware qubits
// through an embedding: per-qubit fields, per-coupler strengths, and the
// chain structure needed to read results back. After EmbedIsing returns,
// every field is read-only — one EmbeddedProblem may be sampled from many
// goroutines concurrently.
type EmbeddedProblem struct {
	Graph     topo.Topology
	Embedding *embed.Embedding

	Qubits  []int         // the active qubits, in a fixed order
	qubitIx map[int]int   // qubit id → index into Qubits
	H       []float64     // field per active qubit (indexed as Qubits)
	nodeOf  []int         // active-qubit index → logical node
	chains  map[int][]int // logical node → active-qubit indices
	offset  float64       // constant term of the logical Ising model

	// Flattened structures precomputed once so the sweep kernel neither
	// allocates nor sorts: CSR adjacency with a symmetric-pair index for the
	// programming-noise model, chain lists in sorted-node order, and the
	// largest coefficient magnitude (the noise scale).
	adjStart   []int32   // CSR row offsets, len(Qubits)+1
	adjOther   []int32   // neighbour active-qubit index per entry
	adjJ       []float64 // coupler strength per entry
	adjPair    []int32   // unordered-pair id per entry (both directions share one)
	numPairs   int
	maxAbs     float64 // max |coefficient| over H and couplers
	chainNodes []int   // logical nodes, sorted
	chainIx    [][]int // chain qubit-index lists, aligned with chainNodes

	// Chain shape, precomputed for the QA-quality telemetry (chain length
	// drives annealer error, so break rates are bucketed by it).
	maxChainLen int // longest chain, in qubits
	chainQubits int // total qubits held in chains
}

type coupling struct {
	other int // active-qubit index
	j     float64
}

// ChainStrengthFor returns a reasonable ferromagnetic chain coupling for a
// logical Ising model: 1.25× the largest coefficient magnitude, the usual
// rule of thumb for D-Wave embeddings. Isolated sampling slightly favours
// weaker chains (bench.AblationChainStrength: majority vote repairs breaks),
// but end-to-end hybrid guidance measures better with intact chains, so the
// conventional value stands; hyqsat.Options.ChainStrengthMult overrides it.
func ChainStrengthFor(is *qubo.Ising) float64 {
	max := 0.0
	for _, h := range is.H {
		if v := math.Abs(h); v > max {
			max = v
		}
	}
	for _, j := range is.J {
		if v := math.Abs(j); v > max {
			max = v
		}
	}
	if max == 0 {
		return 1
	}
	return 1.25 * max
}

// EmbedIsing programs a logical Ising model onto hardware through an
// embedding: each node's field is split across its chain, each logical
// coupling is split across the couplers available between the two chains,
// and chain qubits are bound with a ferromagnetic coupling of the given
// strength. Logical nodes must be present in the embedding; couplings whose
// endpoints both embedded must be realised by at least one coupler.
func EmbedIsing(is *qubo.Ising, emb *embed.Embedding, g topo.Topology, chainStrength float64) *EmbeddedProblem {
	ep := &EmbeddedProblem{
		Graph:     g,
		Embedding: emb,
		qubitIx:   map[int]int{},
		chains:    map[int][]int{},
		offset:    is.Offset,
	}
	nodes := make([]int, 0, len(emb.Chains))
	for node := range emb.Chains {
		nodes = append(nodes, node)
	}
	sort.Ints(nodes)
	for _, node := range nodes {
		for _, q := range emb.Chains[node] {
			if _, ok := ep.qubitIx[q]; !ok {
				ep.qubitIx[q] = len(ep.Qubits)
				ep.Qubits = append(ep.Qubits, q)
				ep.nodeOf = append(ep.nodeOf, node)
			}
		}
	}
	n := len(ep.Qubits)
	ep.H = make([]float64, n)
	adj := make([][]coupling, n)
	addCoupler := func(qa, qb int, j float64) {
		a, b := ep.qubitIx[qa], ep.qubitIx[qb]
		adj[a] = append(adj[a], coupling{b, j})
		adj[b] = append(adj[b], coupling{a, j})
	}
	for _, node := range nodes {
		chain := emb.Chains[node]
		ix := make([]int, len(chain))
		for i, q := range chain {
			ix[i] = ep.qubitIx[q]
		}
		ep.chains[node] = ix
		if h, ok := is.H[node]; ok && len(chain) > 0 {
			per := h / float64(len(chain))
			for _, i := range ix {
				ep.H[i] += per
			}
		}
		// Ferromagnetic chain couplers.
		for _, c := range embed.IntraChainCouplers(g, chain) {
			addCoupler(c.A, c.B, -chainStrength)
		}
	}
	jEdges := make([]qubo.Edge, 0, len(is.J))
	for e := range is.J {
		jEdges = append(jEdges, e)
	}
	sort.Slice(jEdges, func(i, k int) bool {
		if jEdges[i].U != jEdges[k].U {
			return jEdges[i].U < jEdges[k].U
		}
		return jEdges[i].V < jEdges[k].V
	})
	for _, e := range jEdges {
		j := is.J[e]
		if _, ok := emb.Chains[e.U]; !ok {
			continue
		}
		if _, ok := emb.Chains[e.V]; !ok {
			continue
		}
		couplers := embed.InterChainCouplers(g, emb, e.U, e.V)
		if len(couplers) == 0 {
			panic("anneal: logical coupling with no hardware coupler; embedding invalid")
		}
		per := j / float64(len(couplers))
		for _, c := range couplers {
			addCoupler(c.A, c.B, per)
		}
	}
	ep.finalize(adj)
	return ep
}

// finalize flattens the build-time adjacency into the read-only CSR form the
// sweep kernel runs on, assigns every unordered qubit pair a stable id (so
// programming noise perturbs both directions of a coupler identically), and
// precomputes the chain lists and the coefficient scale that SampleOnce used
// to rescan on every call.
func (ep *EmbeddedProblem) finalize(adj [][]coupling) {
	n := len(ep.Qubits)
	total := 0
	for i := range adj {
		total += len(adj[i])
	}
	ep.adjStart = make([]int32, n+1)
	ep.adjOther = make([]int32, total)
	ep.adjJ = make([]float64, total)
	ep.adjPair = make([]int32, total)
	pairOf := make(map[[2]int]int32, total/2)
	k := 0
	for i := 0; i < n; i++ {
		ep.adjStart[i] = int32(k)
		for _, c := range adj[i] {
			key := [2]int{i, c.other}
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			id, ok := pairOf[key]
			if !ok {
				id = int32(len(pairOf))
				pairOf[key] = id
			}
			ep.adjOther[k] = int32(c.other)
			ep.adjJ[k] = c.j
			ep.adjPair[k] = id
			k++
		}
	}
	ep.adjStart[n] = int32(k)
	ep.numPairs = len(pairOf)

	ep.maxAbs = 0
	for _, v := range ep.H {
		if a := math.Abs(v); a > ep.maxAbs {
			ep.maxAbs = a
		}
	}
	for _, j := range ep.adjJ {
		if a := math.Abs(j); a > ep.maxAbs {
			ep.maxAbs = a
		}
	}

	ep.chainNodes = make([]int, 0, len(ep.chains))
	for node := range ep.chains {
		ep.chainNodes = append(ep.chainNodes, node)
	}
	sort.Ints(ep.chainNodes)
	ep.chainIx = make([][]int, len(ep.chainNodes))
	ep.maxChainLen, ep.chainQubits = 0, 0
	for i, node := range ep.chainNodes {
		ep.chainIx[i] = ep.chains[node]
		ep.chainQubits += len(ep.chainIx[i])
		if len(ep.chainIx[i]) > ep.maxChainLen {
			ep.maxChainLen = len(ep.chainIx[i])
		}
	}
}

// NumActiveQubits returns the number of qubits carrying the problem.
func (ep *EmbeddedProblem) NumActiveQubits() int { return len(ep.Qubits) }

// Sample is the result of one hardware sample: raw qubit spins, the
// majority-voted logical values, how many chains were broken, and the raw
// hardware energy.
type Sample struct {
	NodeValues     map[int]bool // logical node → value (x = spin up)
	BrokenChains   int
	HardwareEnergy float64 // Ising energy of the raw spins, incl. chain terms
}

// SampleLogical anneals a logical Ising model directly (no embedding): the
// idealised noise-free simulator over the problem graph. numNodes bounds the
// node index space.
func (s *Sampler) SampleLogical(is *qubo.Ising, numNodes int) map[int]bool {
	// Build dense adjacency.
	h := make([]float64, numNodes)
	for i, v := range is.H {
		h[i] = v
	}
	adj := make([][]coupling, numNodes)
	for e, j := range is.J {
		adj[e.U] = append(adj[e.U], coupling{e.V, j})
		adj[e.V] = append(adj[e.V], coupling{e.U, j})
	}
	spins := make([]int8, numNodes)
	for i := range spins {
		if s.Rng.Intn(2) == 0 {
			spins[i] = 1
		} else {
			spins[i] = -1
		}
	}
	sched := s.Schedule
	if sched.Sweeps <= 0 {
		sched = DefaultSchedule()
	}
	beta := sched.BetaMin
	ratio := 1.0
	if sched.Sweeps > 1 {
		ratio = math.Pow(sched.BetaMax/sched.BetaMin, 1/float64(sched.Sweeps-1))
	}
	for sweep := 0; sweep < sched.Sweeps; sweep++ {
		for i := 0; i < numNodes; i++ {
			local := h[i]
			for _, c := range adj[i] {
				local += c.j * float64(spins[c.other])
			}
			dE := -2 * float64(spins[i]) * local
			if dE <= 0 || s.Rng.Float64() < math.Exp(-beta*dE) {
				spins[i] = -spins[i]
			}
		}
		beta *= ratio
	}
	out := make(map[int]bool, numNodes)
	for i, sp := range spins {
		out[i] = sp > 0
	}
	return out
}
