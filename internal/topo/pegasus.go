package topo

import "fmt"

// Pegasus is a Pegasus-family hardware model in "nice coordinates": three
// interleaved Chimera(s,s,4) fabrics (s = m−1) whose cells are augmented with
// odd couplers inside each K_{4,4} side and cross-fabric couplers between
// consecutive copies. A qubit is addressed (t, y, x, u, k) with fabric copy
// t ∈ [0,3), cell (y,x) ∈ [0,s)², orientation u ∈ {0,1} (0 horizontal) and
// in-cell index k ∈ [0,4); the linear index is ((t·s+y)·s+x)·8 + u·4 + k.
//
// The coupler set is the Chimera set per copy (intra-cell K_{4,4} plus
// same-orientation line links), plus:
//
//   - odd couplers: (t,y,x,u,k) — (t,y,x,u,k⊕1), pairing k=0↔1 and k=2↔3
//     within one side of a cell;
//   - cross-copy couplers: (t,y,x,u,k) — ((t+1) mod 3, y, x, 1−u, k),
//     stitching the three fabrics into one graph.
//
// This is a structurally faithful approximation of D-Wave's Pegasus P_m —
// same nice-coordinate skeleton, qubit degree 9 vs Chimera's 6 — not a
// coupler-exact replica of an Advantage working graph. What the embedding
// layers need from it is exactly what it models: denser connectivity than
// Chimera, so chains are shorter (Pudenz et al. tie chain length to error
// rates), and more K_{4,4} tiles per fabric for the template embedder.
type Pegasus struct {
	M      int // Pegasus size parameter; the fabric grid is s×s with s = M−1
	s      int
	broken []bool
	adj    intAdj
}

// NewPegasus returns the Pegasus(m) model; m ≥ 2.
func NewPegasus(m int) *Pegasus {
	if m < 2 {
		panic(fmt.Sprintf("pegasus: invalid size %d", m))
	}
	s := m - 1
	g := &Pegasus{M: m, s: s, broken: make([]bool, 3*s*s*8)}
	g.rebuildAdj()
	return g
}

// AdvantagePegasus returns the Pegasus(16) model, the generation-size of the
// D-Wave Advantage.
func AdvantagePegasus() *Pegasus { return NewPegasus(16) }

// Name identifies the topology family.
func (g *Pegasus) Name() string { return "pegasus" }

// NumQubits returns the total number of qubits, including broken ones.
func (g *Pegasus) NumQubits() int { return 3 * g.s * g.s * 8 }

// Qubit returns the linear index of qubit (t,y,x,u,k).
func (g *Pegasus) Qubit(t, y, x, u, k int) int {
	if t < 0 || t >= 3 || y < 0 || y >= g.s || x < 0 || x >= g.s ||
		u < 0 || u >= 2 || k < 0 || k >= 4 {
		panic(fmt.Sprintf("pegasus: qubit (%d,%d,%d,%d,%d) out of range", t, y, x, u, k))
	}
	return ((t*g.s+y)*g.s+x)*8 + u*4 + k
}

// Coords inverts Qubit.
func (g *Pegasus) Coords(q int) (t, y, x, u, k int) {
	k = q % 4
	q /= 4
	u = q % 2
	q /= 2
	x = q % g.s
	q /= g.s
	y = q % g.s
	t = q / g.s
	return
}

// MarkBroken marks qubit q unusable and rebuilds the adjacency eagerly.
func (g *Pegasus) MarkBroken(q int) {
	g.broken[q] = true
	g.rebuildAdj()
}

// IsBroken reports whether qubit q is unusable.
func (g *Pegasus) IsBroken(q int) bool { return g.broken[q] }

// NumWorking returns the number of usable qubits.
func (g *Pegasus) NumWorking() int {
	n := 0
	for _, b := range g.broken {
		if !b {
			n++
		}
	}
	return n
}

// Coupled reports whether working qubits a and b share a coupler, by scanning
// a's bounded-degree adjacency row.
func (g *Pegasus) Coupled(a, b int) bool { return coupledViaAdj(&g.adj, a, b) }

// Neighbors returns the working qubits coupled to q as a view into the
// precomputed CSR adjacency (nil when q is broken). The view is valid until
// the next MarkBroken call and must not be modified.
func (g *Pegasus) Neighbors(q int) []int { return g.adj.row(q) }

func (g *Pegasus) rebuildAdj() {
	g.adj = buildAdj(g.NumQubits(), g.broken, func(q int, emit func(p int)) {
		t, y, x, u, k := g.Coords(q)
		// Intra-cell K_{4,4} to the opposite side.
		for j := 0; j < 4; j++ {
			emit(g.Qubit(t, y, x, 1-u, j))
		}
		// Same-orientation line links within the copy.
		if u == 0 { // horizontal: along the row
			if x > 0 {
				emit(g.Qubit(t, y, x-1, 0, k))
			}
			if x < g.s-1 {
				emit(g.Qubit(t, y, x+1, 0, k))
			}
		} else { // vertical: along the column
			if y > 0 {
				emit(g.Qubit(t, y-1, x, 1, k))
			}
			if y < g.s-1 {
				emit(g.Qubit(t, y+1, x, 1, k))
			}
		}
		// Odd coupler: partner within the same side.
		emit(g.Qubit(t, y, x, u, k^1))
		// Cross-copy couplers: forward image in copy t+1 and the qubit in
		// copy t−1 whose forward image is q (both with flipped orientation).
		emit(g.Qubit((t+1)%3, y, x, 1-u, k))
		emit(g.Qubit((t+2)%3, y, x, 1-u, k))
	})
}

// Edges enumerates every working coupler of the graph.
func (g *Pegasus) Edges() []Edge { return edgesFromAdj(g.NumQubits(), &g.adj) }

// Tiles enumerates the K_{4,4} unit cells copy-major then row-major: side A
// holds the horizontal (u=0) qubits of a cell, side B the vertical (u=1)
// ones. Broken qubits are included. Pegasus(m) yields 3·(m−1)² tiles — for
// m=16 that is 675 vs Chimera(16,16,4)'s 256, the density win the template
// embedder exploits.
func (g *Pegasus) Tiles() []Tile {
	out := make([]Tile, 0, 3*g.s*g.s)
	for t := 0; t < 3; t++ {
		for y := 0; y < g.s; y++ {
			for x := 0; x < g.s; x++ {
				tl := Tile{A: make([]int, 4), B: make([]int, 4)}
				for k := 0; k < 4; k++ {
					tl.A[k] = g.Qubit(t, y, x, 0, k)
					tl.B[k] = g.Qubit(t, y, x, 1, k)
				}
				out = append(out, tl)
			}
		}
	}
	return out
}
