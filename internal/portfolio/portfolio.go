// Package portfolio runs several solver configurations concurrently on the
// same formula and returns the first conclusive answer — the standard
// parallel-portfolio construction used by SAT competition solvers, here
// spanning both the classical CDCL configurations and the HyQSAT hybrid —
// extended with cooperative solving: a clause-sharing bus (share.go) that
// ships short/low-LBD learnt clauses between entrants, and a cube-and-conquer
// splitter (cube.go) that partitions an instance into assumption cubes solved
// across workers.
//
// Each entrant runs on its own copy of the formula in its own goroutine;
// the first Sat or Unsat result cancels the others (they are abandoned, not
// interrupted mid-step: solvers poll their conflict budget in bounded
// windows). Results are always cross-checked: a Sat entrant must produce a
// verified model, and in certifying mode (SolveCertified) an Unsat entrant
// must additionally produce a DRAT proof that the internal/verify RUP checker
// accepts before its verdict is allowed to win the race. With sharing
// enabled, certification runs against a single shared additions-only proof
// log all sharing entrants append to (see verify.SharedRecorder), and every
// imported clause is re-asserted into that log by the importer — so a
// corrupted clause on the bus fails certification instead of poisoning it.
package portfolio

import (
	"context"
	"fmt"
	"sync"
	"time"

	"hyqsat/internal/cnf"
	"hyqsat/internal/hyqsat"
	"hyqsat/internal/obs"
	"hyqsat/internal/qpu"
	"hyqsat/internal/sat"
	"hyqsat/internal/verify"
)

// RunInput is one entrant budget window: the formula copy to solve, the
// conflict budget, and the race-level facilities the entrant should wire into
// its solver. Exchange (when non-nil) is the entrant's clause-sharing
// endpoint; SharedProof (when non-nil, certifying shared races only) is the
// group proof log the entrant must route its DRAT trace into if — and only
// if — it attaches the exchange. An entrant whose premise differs from the
// race formula (the hybrid on a non-3-CNF input) must leave both alone and
// certify privately.
type RunInput struct {
	Formula     *cnf.Formula
	Budget      int64
	Certify     bool
	Exchange    sat.ClauseExchange
	SharedProof sat.ProofWriter
	// Trace, when non-nil, is the entrant's pre-attributed tracer: the race
	// scopes it per entrant (solve id + entrant name), so the solver events
	// of concurrent entrants demultiplex in the recorded stream. Entrants
	// wire it into their solvers.
	Trace obs.Tracer
}

// RunOutput is the window's outcome. Cert carries a private certificate
// (premise + recorded proof) backing an Unsat verdict; SharedCert instead
// marks the verdict as certified through the shared proof log, which the race
// snapshots and checks itself. QAReads/QACalls report quantum-backend work so
// the race can aggregate total effort across entrants and windows.
type RunOutput struct {
	Result     sat.Result
	Cert       *verify.Certificate
	SharedCert bool
	QAReads    int64
	QACalls    int64
}

// Entrant is one competitor: a name and a Run function solving one budget
// window, returning Unknown when the budget expires. The context carries the
// race's cancellation and any caller deadline; entrants propagate it into
// cancellable solvers (the hybrid's QA backend honours it) and may otherwise
// rely on the window budget for responsiveness.
type Entrant struct {
	Name string
	Run  func(ctx context.Context, in RunInput) RunOutput
}

// MiniSATEntrant is the VSIDS/Luby baseline.
func MiniSATEntrant(seed int64) Entrant {
	mk := func(f *cnf.Formula, budget int64) (*sat.Solver, *cnf.Formula) {
		o := sat.MiniSATOptions()
		o.Seed = seed
		o.MaxConflicts = budget
		return sat.New(f, o), f
	}
	return cdclEntrant(fmt.Sprintf("minisat/s%d", seed), mk)
}

// KissatEntrant is the CHB/LBD baseline.
func KissatEntrant(seed int64) Entrant {
	mk := func(f *cnf.Formula, budget int64) (*sat.Solver, *cnf.Formula) {
		o := sat.KissatOptions()
		o.Seed = seed
		o.MaxConflicts = budget
		return sat.New(f, o), f
	}
	return cdclEntrant(fmt.Sprintf("kissat/s%d", seed), mk)
}

// cdclEntrant wraps a classical solver constructor into the Run shape.
// Classical solvers have no in-flight cancellation; the bounded conflict
// windows keep their cancellation latency acceptable. Their premise is the
// race formula itself, so they always join the sharing bus when offered.
func cdclEntrant(name string, mk func(*cnf.Formula, int64) (*sat.Solver, *cnf.Formula)) Entrant {
	return Entrant{
		Name: name,
		Run: func(ctx context.Context, in RunInput) RunOutput {
			s, premise := mk(in.Formula, in.Budget)
			// Stop mid-window when the race is decided instead of grinding
			// out the rest of the conflict budget.
			defer context.AfterFunc(ctx, s.Interrupt)()
			if in.Trace != nil && in.Trace.Enabled() {
				s.SetTracer(in.Trace)
			}
			if in.Exchange != nil {
				s.SetExchange(in.Exchange)
			}
			var rec *verify.Recorder
			switch {
			case !in.Certify:
			case in.SharedProof != nil:
				s.SetProofWriter(in.SharedProof)
			default:
				rec = verify.NewRecorder()
				s.SetProofWriter(rec)
			}
			r := s.Solve()
			out := RunOutput{Result: r, SharedCert: in.Certify && in.SharedProof != nil}
			if rec != nil {
				out.Cert = &verify.Certificate{Premise: premise, Proof: rec.Proof()}
			}
			return out
		},
	}
}

// HyQSATEntrant is the hybrid solver on the emulated annealer. Its
// certificate premise is the 3-CNF form the hybrid actually solves,
// equisatisfiable with the input formula.
func HyQSATEntrant(seed int64) Entrant { return HyQSATEntrantBackend(seed, nil) }

// HyQSATEntrantBackend is HyQSATEntrant with a decorated QA access path:
// wrap (when non-nil) is applied around the solver's Local backend, which is
// how a portfolio race runs the hybrid against a fault-injected or
// Resilient-wrapped QPU. The race context reaches the backend, so deadlines
// and cancellation propagate into retry/backoff.
//
// Sharing: the hybrid solves the 3-CNF conversion of the input, so it joins
// the bus only when the input already is 3-CNF (then the conversion copies
// the clause list verbatim and the premises coincide). On longer-clause
// inputs it races unshared and certifies against its own 3-CNF premise.
func HyQSATEntrantBackend(seed int64, wrap func(qpu.Backend) qpu.Backend) Entrant {
	return Entrant{
		Name: fmt.Sprintf("hyqsat/s%d", seed),
		Run: func(ctx context.Context, in RunInput) RunOutput {
			o := hyqsat.HardwareOptions()
			o.Seed = seed
			o.CDCL.MaxConflicts = in.Budget
			o.WrapBackend = wrap
			o.Trace = in.Trace
			h := hyqsat.New(in.Formula, o)
			// Interrupt the embedded CDCL core on cancellation so the hybrid
			// loop reaches its own context check promptly.
			defer context.AfterFunc(ctx, h.SATSolver().Interrupt)()
			share := in.Exchange != nil && in.Formula.Is3CNF()
			if share {
				h.SATSolver().SetExchange(in.Exchange)
			}
			var rec *verify.Recorder
			switch {
			case !in.Certify:
			case share && in.SharedProof != nil:
				h.SetProofWriter(in.SharedProof)
			default:
				rec = verify.NewRecorder()
				h.SetProofWriter(rec)
			}
			r := h.SolveContext(ctx)
			model := r.Model
			if r.Status == sat.Sat && len(model) > in.Formula.NumVars {
				model = model[:in.Formula.NumVars]
			}
			out := RunOutput{
				Result:     sat.Result{Status: r.Status, Model: model, Stats: r.Stats.SAT},
				SharedCert: in.Certify && share && in.SharedProof != nil,
				QAReads:    r.Stats.QAReads,
				QACalls:    int64(r.Stats.QACalls),
			}
			if rec != nil {
				out.Cert = &verify.Certificate{Premise: h.ThreeCNF(), Proof: rec.Proof()}
			}
			return out
		},
	}
}

// DefaultEntrants returns a diverse three-way portfolio.
func DefaultEntrants(seed int64) []Entrant { return DefaultEntrantsBackend(seed, nil) }

// DefaultEntrantsBackend is DefaultEntrants with the hybrid entrant's QA
// access path decorated by wrap (fault injection, Resilient). The classical
// entrants are unaffected — which is the point: under a total QPU outage the
// portfolio still answers through them and through the hybrid's own
// pure-CDCL degradation.
func DefaultEntrantsBackend(seed int64, wrap func(qpu.Backend) qpu.Backend) []Entrant {
	return []Entrant{MiniSATEntrant(seed), KissatEntrant(seed + 1), HyQSATEntrantBackend(seed+2, wrap)}
}

// AggregateStats sums the work of every entrant budget window of a race —
// winners, losers and abandoned windows alike — so conflict counts and QA
// effort reflect the total cost of the parallel solve, not just the winner's
// final window.
type AggregateStats struct {
	Windows int64 // entrant budget windows completed
	SAT     sat.Stats
	QAReads int64
	QACalls int64
}

func (a *AggregateStats) add(out RunOutput) {
	a.Windows++
	s, t := &a.SAT, out.Result.Stats
	s.Iterations += t.Iterations
	s.Decisions += t.Decisions
	s.Conflicts += t.Conflicts
	s.Propagations += t.Propagations
	s.Restarts += t.Restarts
	s.Learned += t.Learned
	s.Removed += t.Removed
	s.Minimized += t.Minimized
	s.ArenaGCs += t.ArenaGCs
	s.Imported += t.Imported
	if t.MaxTrail > s.MaxTrail {
		s.MaxTrail = t.MaxTrail
	}
	a.QAReads += out.QAReads
	a.QACalls += out.QACalls
}

// aggregate is the mutex-guarded race-wide accumulator entrant goroutines
// report into after every window.
type aggregate struct {
	mu sync.Mutex
	st AggregateStats
}

func (a *aggregate) add(out RunOutput) {
	a.mu.Lock()
	a.st.add(out)
	a.mu.Unlock()
}

func (a *aggregate) snapshot() AggregateStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.st
}

// Outcome is the portfolio result: the winning entrant, its result, and the
// race-wide work aggregate. Certified is set by certifying races once the
// winner's verdict passed independent verification. Share carries the bus
// counters when sharing was enabled (zero otherwise).
type Outcome struct {
	Winner    string
	Result    sat.Result
	Elapsed   time.Duration
	Certified bool
	Aggregate AggregateStats
	Share     ShareStats
}

// ErrInvalidModel is reported when a Sat entrant returned a non-model —
// a solver bug the portfolio refuses to propagate.
type ErrInvalidModel struct{ Entrant string }

func (e ErrInvalidModel) Error() string {
	return "portfolio: entrant " + e.Entrant + " returned an invalid model"
}

// ErrUncertified is reported when an entrant's conclusive verdict failed
// certification (an Unsat verdict whose proof the RUP checker rejects).
type ErrUncertified struct {
	Entrant string
	Reason  error
}

func (e ErrUncertified) Error() string {
	return fmt.Sprintf("portfolio: entrant %s verdict failed certification: %v", e.Entrant, e.Reason)
}

func (e ErrUncertified) Unwrap() error { return e.Reason }

// RaceOptions configures SolveWith.
type RaceOptions struct {
	// Certify requires DRAT-backed Unsat verdicts (see SolveCertified).
	Certify bool
	// Trace, when non-nil and enabled, receives PortfolioEvents as the race
	// progresses: one "window" event per entrant budget window, a verdict
	// event per entrant result, and a "winner" event (plus one ShareEvent at
	// the end when sharing is on). Emission happens from entrant goroutines,
	// so the tracer must be safe for concurrent use.
	Trace obs.Tracer
	// Share, when non-nil, enables the clause-sharing bus between entrants
	// with these options (the zero value selects the defaults).
	Share *ShareOptions
	// Bus, when non-nil, is a pre-built bus the race joins instead of
	// building its own from Share — the hook through which tests inject
	// adversarial traffic and callers share one bus across races.
	Bus *Bus
	// Metrics, when non-nil, is the registry the bus counters register in.
	Metrics *obs.Registry
}

// Solve races the entrants on f until one returns a conclusive verified
// result or the context is cancelled. Entrants solve in conflict-budget
// windows so cancellation latency stays bounded. Sat models are always
// checked; Unsat verdicts are trusted (use SolveCertified to require
// proofs).
func Solve(ctx context.Context, f *cnf.Formula, entrants []Entrant) (Outcome, error) {
	return SolveWith(ctx, f, entrants, RaceOptions{})
}

// SolveCertified is Solve with mandatory certification: a Sat winner must
// produce a model satisfying f, and an Unsat winner must produce a DRAT
// proof accepted by the RUP checker against the entrant's premise. Entrants
// that certify neither privately nor through a shared log can win Sat races
// but have their Unsat verdicts rejected.
func SolveCertified(ctx context.Context, f *cnf.Formula, entrants []Entrant) (Outcome, error) {
	return SolveWith(ctx, f, entrants, RaceOptions{Certify: true})
}

// SolveWith is the fully configurable race entry point.
func SolveWith(ctx context.Context, f *cnf.Formula, entrants []Entrant, o RaceOptions) (Outcome, error) {
	return race(ctx, f, entrants, o)
}

func race(ctx context.Context, f *cnf.Formula, entrants []Entrant, o RaceOptions) (Outcome, error) {
	trace := o.Trace
	if trace == nil {
		trace = obs.Nop()
	}
	if len(entrants) == 0 {
		return Outcome{}, fmt.Errorf("portfolio: no entrants")
	}
	// One solve id covers the whole race; each entrant gets a tracer scoped
	// to (raceID, entrant name), so the interleaved streams of concurrent
	// entrants demultiplex offline. Race-level events (winner, share stats)
	// carry the id under the "race" source.
	var raceID string
	if trace.Enabled() {
		raceID = obs.NextSolveID()
	}
	raceTrace := obs.WithSource(trace, obs.Source{Solve: raceID, Name: "race"})
	start := time.Now()

	bus := o.Bus
	if bus == nil && o.Share != nil {
		bus = NewBus(*o.Share, o.Metrics)
	}
	// One shared additions-only proof log for the whole sharing group: every
	// sharing entrant appends its DRAT trace here, so any entrant's Unsat
	// verdict is certifiable from a snapshot regardless of whose imports
	// contributed to it.
	var sharedProof *verify.SharedRecorder
	if bus != nil && o.Certify {
		sharedProof = verify.NewSharedRecorder()
	}
	agg := &aggregate{}

	type msg struct {
		name string
		res  sat.Result
		cert bool
		err  error
	}
	results := make(chan msg, len(entrants))
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	for _, e := range entrants {
		e := e
		var peer *Peer
		if bus != nil {
			peer = bus.NewPeer(e.Name)
		}
		entTrace := obs.WithSource(trace, obs.Source{Solve: raceID, Name: e.Name})
		go func() {
			// Window sizes grow geometrically so easy instances finish in
			// the first window and cancellation stays responsive on hard
			// ones. Every window restarts the entrant from scratch; learnt
			// state is entrant-local except for what crosses the bus.
			budget := int64(20_000)
			// report pairs the verdict message with its trace event.
			report := func(r sat.Result, status string, certified bool, err error) {
				if entTrace.Enabled() {
					ev := obs.PortfolioEvent{Entrant: e.Name, Status: status, Budget: budget}
					if err != nil {
						ev.Err = err.Error()
					}
					entTrace.Emit(ev)
				}
				results <- msg{e.Name, r, certified, err}
			}
			for {
				select {
				case <-ctx.Done():
					return
				default:
				}
				if entTrace.Enabled() {
					entTrace.Emit(obs.PortfolioEvent{Entrant: e.Name, Status: "window", Budget: budget})
				}
				in := RunInput{Formula: f.Copy(), Budget: budget, Certify: o.Certify, Trace: entTrace}
				if peer != nil {
					in.Exchange = peer
					if sharedProof != nil {
						in.SharedProof = sharedProof
					}
				}
				out := e.Run(ctx, in)
				// Satellite fix: every window's work lands in the aggregate,
				// so losers and abandoned windows still count.
				agg.add(out)
				r := out.Result
				if r.Status == sat.Sat {
					if err := verify.CheckModel(f, r.Model); err != nil {
						report(r, "error", false, ErrInvalidModel{e.Name})
						return
					}
					report(r, "sat", o.Certify, nil)
					return
				}
				if r.Status == sat.Unsat {
					if o.Certify {
						cert := out.Cert
						if cert == nil && out.SharedCert {
							// The verdict's proof lives in the shared log; the
							// snapshot already contains this entrant's empty
							// clause (solvers log before returning).
							cert = &verify.Certificate{Premise: f, Proof: sharedProof.Snapshot()}
						}
						if cert == nil {
							report(r, "error", false, ErrUncertified{e.Name,
								fmt.Errorf("no certificate produced")})
							return
						}
						if err := cert.CheckUnsat(); err != nil {
							report(r, "error", false, ErrUncertified{e.Name, err})
							return
						}
					}
					report(r, "unsat", o.Certify, nil)
					return
				}
				budget *= 4
			}
		}()
	}

	failures := 0
	for {
		select {
		case <-ctx.Done():
			return Outcome{}, ctx.Err()
		case m := <-results:
			if m.err != nil {
				failures++
				if failures == len(entrants) {
					return Outcome{}, m.err
				}
				continue
			}
			if raceTrace.Enabled() {
				raceTrace.Emit(obs.PortfolioEvent{Entrant: m.name, Status: "winner"})
			}
			out := Outcome{Winner: m.name, Result: m.res, Elapsed: time.Since(start),
				Certified: m.cert, Aggregate: agg.snapshot()}
			if bus != nil {
				out.Share = bus.Stats()
				if raceTrace.Enabled() {
					raceTrace.Emit(obs.ShareEvent{
						Exported:   out.Share.Exported,
						Imported:   out.Share.Imported,
						Filtered:   out.Share.Filtered,
						Duplicates: out.Share.Duplicates,
						Dropped:    out.Share.Dropped,
					})
				}
			}
			return out, nil
		}
	}
}
