package verify

import (
	"math/rand"
	"strings"
	"testing"

	"hyqsat/internal/cnf"
	"hyqsat/internal/sat"
)

// pigeonhole returns PHP(pigeons, holes): unsatisfiable when pigeons>holes,
// and — unlike contradictory unit chains — not refutable by unit propagation
// alone, so a real proof is required.
func pigeonhole(pigeons, holes int) *cnf.Formula {
	f := cnf.New(pigeons * holes)
	at := func(p, h int) cnf.Var { return cnf.Var(p*holes + h) }
	for p := 0; p < pigeons; p++ {
		c := make(cnf.Clause, holes)
		for h := 0; h < holes; h++ {
			c[h] = cnf.Pos(at(p, h))
		}
		f.AddClause(c)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				f.AddClause(cnf.Clause{cnf.Neg(at(p1, h)), cnf.Neg(at(p2, h))})
			}
		}
	}
	return f
}

// solveWithProof runs a CDCL solve with a recorder attached.
func solveWithProof(f *cnf.Formula, opts sat.Options) (sat.Result, Proof) {
	s := sat.New(f.Copy(), opts)
	rec := NewRecorder()
	s.SetProofWriter(rec)
	r := s.Solve()
	return r, rec.Proof()
}

func TestUnsatProofFromSolverAccepted(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    *cnf.Formula
	}{
		{"php43", pigeonhole(4, 3)},
		{"php54", pigeonhole(5, 4)},
		{"contradictory-units", func() *cnf.Formula {
			f := cnf.New(1)
			f.Add(1)
			f.Add(-1)
			return f
		}()},
		{"empty-clause", func() *cnf.Formula {
			f := cnf.New(2)
			f.Add(1, 2)
			f.AddClause(cnf.Clause{})
			return f
		}()},
	} {
		for _, opts := range []sat.Options{sat.MiniSATOptions(), sat.KissatOptions()} {
			r, proof := solveWithProof(tc.f, opts)
			if r.Status != sat.Unsat {
				t.Fatalf("%s: status %v", tc.name, r.Status)
			}
			if err := CheckUnsatProof(tc.f, proof); err != nil {
				t.Fatalf("%s: valid proof rejected: %v", tc.name, err)
			}
		}
	}
}

func TestUnsatProofRandomInstances(t *testing.T) {
	// Over-constrained random 3-SAT: mostly UNSAT; certify every UNSAT proof
	// under both solver configurations (Luby/activity vs EMA/LBD, which also
	// exercises different deletion patterns).
	rng := rand.New(rand.NewSource(7))
	cfg := DiffConfig{MinVars: 10, MaxVars: 30, MinRatio: 5.0, MaxRatio: 7.0}.withDefaults()
	unsats := 0
	for i := 0; i < 60; i++ {
		f := randomInstance(rng, cfg)
		for _, opts := range []sat.Options{sat.MiniSATOptions(), sat.KissatOptions()} {
			r, proof := solveWithProof(f, opts)
			switch r.Status {
			case sat.Unsat:
				unsats++
				if err := CheckUnsatProof(f, proof); err != nil {
					t.Fatalf("instance %d: proof rejected: %v\n%s", i, err, cnf.DIMACSString(f))
				}
			case sat.Sat:
				if err := CheckModel(f, r.Model); err != nil {
					t.Fatalf("instance %d: %v", i, err)
				}
			}
		}
	}
	if unsats == 0 {
		t.Fatal("no UNSAT instances generated; proof path untested")
	}
}

func TestProofForSatisfiableFormulaRejected(t *testing.T) {
	// Soundness: no proof may certify a satisfiable formula. Reuse a valid
	// UNSAT proof but swap the premise for a satisfiable formula over the
	// same variables.
	php := pigeonhole(4, 3)
	r, proof := solveWithProof(php, sat.MiniSATOptions())
	if r.Status != sat.Unsat {
		t.Fatal("php(4,3) not unsat")
	}
	satF := cnf.New(php.NumVars)
	for v := 0; v < php.NumVars; v++ {
		satF.Add(v + 1) // every variable true: trivially satisfiable
	}
	if err := CheckUnsatProof(satF, proof); err == nil {
		t.Fatal("proof accepted against a satisfiable premise")
	}
	if err := CheckUnsatProof(satF, nil); err == nil {
		t.Fatal("empty proof accepted against a satisfiable premise")
	}
}

func TestMutatedProofRejected(t *testing.T) {
	php := pigeonhole(4, 3)
	r, proof := solveWithProof(php, sat.MiniSATOptions())
	if r.Status != sat.Unsat || len(proof) == 0 {
		t.Fatalf("unexpected: status=%v steps=%d", r.Status, len(proof))
	}
	if err := CheckUnsatProof(php, proof); err != nil {
		t.Fatalf("baseline proof rejected: %v", err)
	}

	// A non-consequence step injected at the front must be caught: no unit
	// clause is RUP for the pigeonhole formula at step 0.
	corrupted := append(Proof{{Lits: []cnf.Lit{cnf.Pos(0)}}}, proof...)
	if err := CheckUnsatProof(php, corrupted); err == nil {
		t.Fatal("corrupted proof (bogus leading unit) accepted")
	}

	// An empty proof must be rejected: the formula does not refute itself by
	// unit propagation.
	if err := CheckUnsatProof(php, Proof{}); err == nil {
		t.Fatal("empty proof accepted for php(4,3)")
	}

	// Deleting the about-to-be-resolved clauses before they are used must
	// break the derivation: turn each addition into (delete everything it
	// would propagate with) — approximated by deleting the entire formula
	// first, after which nothing non-trivial is RUP.
	var wipe Proof
	for _, c := range php.Clauses {
		wipe = append(wipe, Step{Del: true, Lits: c})
	}
	if err := CheckUnsatProof(php, append(wipe, proof...)); err == nil {
		t.Fatal("proof accepted after deleting all premises")
	}
}

func TestDeletionChangesRUPStatus(t *testing.T) {
	// f = (x∨y)(x∨¬y)(¬x∨y)(¬x∨¬y). The unit [x] is RUP — unless (x∨y) is
	// deleted first, in which case assuming ¬x propagates only ¬y and no
	// conflict arises. This pins down that deletions are honored.
	f := cnf.New(2)
	f.Add(1, 2)
	f.Add(1, -2)
	f.Add(-1, 2)
	f.Add(-1, -2)

	good := Proof{{Lits: []cnf.Lit{cnf.Pos(0)}}}
	if err := CheckUnsatProof(f, good); err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}
	bad := Proof{
		{Del: true, Lits: cnf.NewClause(1, 2)},
		{Lits: []cnf.Lit{cnf.Pos(0)}},
	}
	if err := CheckUnsatProof(f, bad); err == nil {
		t.Fatal("proof accepted though its premise was deleted")
	}
}

func TestDRATTextRoundTrip(t *testing.T) {
	php := pigeonhole(4, 3)
	_, proof := solveWithProof(php, sat.KissatOptions())
	var sb strings.Builder
	if err := WriteDRAT(&sb, proof); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseDRATString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(proof) {
		t.Fatalf("round trip changed step count: %d vs %d", len(parsed), len(proof))
	}
	for i := range proof {
		if parsed[i].Del != proof[i].Del || len(parsed[i].Lits) != len(proof[i].Lits) {
			t.Fatalf("step %d shape mismatch", i)
		}
		for j := range proof[i].Lits {
			if parsed[i].Lits[j] != proof[i].Lits[j] {
				t.Fatalf("step %d literal %d mismatch", i, j)
			}
		}
	}
	if err := CheckUnsatProof(php, parsed); err != nil {
		t.Fatalf("parsed proof rejected: %v", err)
	}
}

func TestParseDRATErrors(t *testing.T) {
	for _, src := range []string{
		"1 2\n",        // missing terminator
		"1 2 0 3 0\n",  // literals after terminator
		"x 0\n",        // non-integer
		"99999999 0\n", // out of range
		"d 1 2\n",      // unterminated deletion
		"-0 0\n",       // -0 literal
		"1 -0 0\n",     // -0 literal mid-clause
	} {
		if _, err := ParseDRATString(src); err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
	p, err := ParseDRATString("c comment\n\n1 -2 0\nd 1 -2 0\n0\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 || p[0].Del || !p[1].Del || len(p[2].Lits) != 0 {
		t.Fatalf("unexpected parse: %+v", p)
	}
}

func TestProofMentioningForeignVariableRejected(t *testing.T) {
	f := cnf.New(1)
	f.Add(1)
	f.Add(-1)
	p := Proof{{Lits: []cnf.Lit{cnf.Pos(5)}}}
	if err := CheckUnsatProof(f, p); err == nil {
		t.Fatal("proof over foreign variables accepted")
	}
}
