// Package embed maps QA problem graphs onto the Chimera hardware graph.
//
// Three embedders are provided:
//
//   - Fast: the HyQSAT paper's linear-time, topology-aware scheme (§IV-B) —
//     logical variables are allocated to vertical lines in clause-queue
//     order, auxiliary variables to horizontal lines, and a connection
//     requirement list (CRL) is satisfied by a greedy left-to-right,
//     bottom-up allocation of horizontal line segments.
//   - Minorminer: a from-scratch reimplementation of the Cai–Macready–Roy
//     heuristic behind D-Wave's minorminer library [11] — iterative chain
//     placement with weighted-Dijkstra routing and penalty-driven repair.
//   - PandR: a place-and-route baseline in the style of Bian et al. [8] —
//     simulated-annealing cell placement followed by BFS path routing.
//
// All embedders produce an Embedding (node → qubit chain) that can be
// checked with Verify and characterised with Stats.
package embed

import (
	"fmt"
	"sort"

	"hyqsat/internal/qubo"
	"hyqsat/internal/topo"
)

// Problem is the graph to embed: nodes 0..NumNodes-1 and quadratic-coupling
// edges between them.
type Problem struct {
	NumNodes int
	Edges    []qubo.Edge
}

// ProblemFromEncoding extracts the problem graph of a QUBO encoding.
func ProblemFromEncoding(e *qubo.Encoding) *Problem {
	return &Problem{NumNodes: e.NumNodes(), Edges: e.ProblemGraph()}
}

// Embedding assigns each embedded problem node a chain of hardware qubits.
// Nodes that could not be embedded are absent from Chains.
type Embedding struct {
	Chains map[int][]int
}

// NewEmbedding returns an empty embedding.
func NewEmbedding() *Embedding { return &Embedding{Chains: map[int][]int{}} }

// QubitsUsed returns the total number of qubits over all chains.
func (e *Embedding) QubitsUsed() int {
	n := 0
	for _, c := range e.Chains {
		n += len(c)
	}
	return n
}

// ChainLengths returns the chain length of every embedded node.
func (e *Embedding) ChainLengths() []int {
	out := make([]int, 0, len(e.Chains))
	for _, c := range e.Chains {
		out = append(out, len(c))
	}
	sort.Ints(out)
	return out
}

// MeanChainLength returns the average chain length (0 for an empty embedding).
func (e *Embedding) MeanChainLength() float64 {
	if len(e.Chains) == 0 {
		return 0
	}
	return float64(e.QubitsUsed()) / float64(len(e.Chains))
}

// MaxChainLength returns the longest chain length.
func (e *Embedding) MaxChainLength() int {
	max := 0
	for _, c := range e.Chains {
		if len(c) > max {
			max = len(c)
		}
	}
	return max
}

// Verify checks that e is a valid minor embedding of p into g: every chain
// is non-empty, chains are pairwise disjoint, every chain is internally
// connected through hardware couplers, and every problem edge between two
// embedded nodes is realised by at least one inter-chain coupler. Edges with
// an unembedded endpoint are ignored (partial embeddings are legal: the
// caller decides which nodes had to be embedded).
func Verify(p *Problem, g topo.Topology, e *Embedding) error {
	owner := map[int]int{}
	for node, chain := range e.Chains {
		if len(chain) == 0 {
			return fmt.Errorf("embed: node %d has an empty chain", node)
		}
		for _, q := range chain {
			if q < 0 || q >= g.NumQubits() {
				return fmt.Errorf("embed: node %d uses out-of-range qubit %d", node, q)
			}
			if g.IsBroken(q) {
				return fmt.Errorf("embed: node %d uses broken qubit %d", node, q)
			}
			if prev, ok := owner[q]; ok {
				return fmt.Errorf("embed: qubit %d shared by nodes %d and %d", q, prev, node)
			}
			owner[q] = node
		}
	}
	for node, chain := range e.Chains {
		if !chainConnected(g, chain) {
			return fmt.Errorf("embed: chain of node %d is disconnected: %v", node, chain)
		}
	}
	for _, ed := range p.Edges {
		cu, okU := e.Chains[ed.U]
		cv, okV := e.Chains[ed.V]
		if !okU || !okV {
			continue
		}
		if !chainsCoupled(g, cu, cv) {
			return fmt.Errorf("embed: problem edge %v has no hardware coupler", ed)
		}
	}
	return nil
}

func chainConnected(g topo.Topology, chain []int) bool {
	if len(chain) <= 1 {
		return true
	}
	in := map[int]bool{}
	for _, q := range chain {
		in[q] = true
	}
	stack := []int{chain[0]}
	visited := map[int]bool{chain[0]: true}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range g.Neighbors(q) {
			if in[n] && !visited[n] {
				visited[n] = true
				stack = append(stack, n)
			}
		}
	}
	return len(visited) == len(chain)
}

func chainsCoupled(g topo.Topology, a, b []int) bool {
	inB := map[int]bool{}
	for _, q := range b {
		inB[q] = true
	}
	for _, q := range a {
		for _, n := range g.Neighbors(q) {
			if inB[n] {
				return true
			}
		}
	}
	return false
}

// InterChainCouplers returns every hardware coupler connecting the chains of
// nodes u and v — the couplers across which the sampler distributes the
// logical J weight.
func InterChainCouplers(g topo.Topology, e *Embedding, u, v int) []topo.Edge {
	var out []topo.Edge
	inV := map[int]bool{}
	for _, q := range e.Chains[v] {
		inV[q] = true
	}
	for _, q := range e.Chains[u] {
		for _, n := range g.Neighbors(q) {
			if inV[n] {
				a, b := q, n
				if a > b {
					a, b = b, a
				}
				out = append(out, topo.Edge{A: a, B: b})
			}
		}
	}
	return out
}

// IntraChainCouplers returns the hardware couplers joining qubits within one
// chain — the couplers that receive the ferromagnetic chain coupling.
func IntraChainCouplers(g topo.Topology, chain []int) []topo.Edge {
	in := map[int]bool{}
	for _, q := range chain {
		in[q] = true
	}
	var out []topo.Edge
	for _, q := range chain {
		for _, n := range g.Neighbors(q) {
			if in[n] && q < n {
				out = append(out, topo.Edge{A: q, B: n})
			}
		}
	}
	return out
}
