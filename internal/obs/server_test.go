package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	body, _ := io.ReadAll(w.Result().Body)
	return w.Result().StatusCode, string(body)
}

func TestHandlerMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("qa_calls").Add(7)
	h := Handler(reg, nil, nil)
	code, body := get(t, h, "/metrics")
	if code != 200 || !strings.Contains(body, "qa_calls 7") {
		t.Fatalf("code=%d body=%q", code, body)
	}
}

func TestHandlerStatus(t *testing.T) {
	var status StatusVar
	h := Handler(NewRegistry(), nil, &status)

	code, body := get(t, h, "/solve/status")
	var st map[string]any
	if code != 200 || json.Unmarshal([]byte(body), &st) != nil {
		t.Fatalf("code=%d body=%q", code, body)
	}
	if st["state"] != "idle" {
		t.Fatalf("unbound status = %v, want idle", st)
	}

	status.Set(func() map[string]any { return map[string]any{"iteration": int64(42)} })
	_, body = get(t, h, "/solve/status")
	if json.Unmarshal([]byte(body), &st) != nil {
		t.Fatalf("bad status JSON: %q", body)
	}
	if st["state"] != "solving" || st["iteration"] != float64(42) {
		t.Fatalf("bound status = %v", st)
	}
}

func TestHandlerFlight(t *testing.T) {
	noRing := Handler(NewRegistry(), nil, nil)
	if code, _ := get(t, noRing, "/trace/flight"); code != 404 {
		t.Fatalf("flight without ring: code=%d, want 404", code)
	}

	ring := NewRing(4)
	ring.Emit(RestartEvent{Restarts: 1})
	h := Handler(NewRegistry(), ring, nil)
	code, body := get(t, h, "/trace/flight")
	if code != 200 {
		t.Fatalf("flight code=%d", code)
	}
	events, err := ReadJSONL(strings.NewReader(body))
	if err != nil || len(events) != 1 {
		t.Fatalf("flight body events=%d err=%v body=%q", len(events), err, body)
	}
}

func TestHandlerExpvar(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("iteration").Set(5)
	h := Handler(reg, nil, nil)
	code, body := get(t, h, "/debug/vars")
	if code != 200 {
		t.Fatalf("expvar code=%d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("expvar not JSON: %v", err)
	}
	hy, ok := vars["hyqsat"].(map[string]any)
	if !ok {
		t.Fatalf("expvar missing hyqsat section: %v", vars["hyqsat"])
	}
	gauges, _ := hy["gauges"].(map[string]any)
	if gauges["iteration"] != float64(5) {
		t.Fatalf("expvar gauges = %v", gauges)
	}
}

func TestServeAndClose(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up").Inc()
	srv, err := Serve("127.0.0.1:0", Handler(reg, nil, nil))
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "up 1") {
		t.Fatalf("code=%d body=%q", resp.StatusCode, body)
	}
}
