package anneal

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"hyqsat/internal/chimera"
	"hyqsat/internal/cnf"
	"hyqsat/internal/embed"
	"hyqsat/internal/qubo"
)

// testEmbeddedProblem builds a representative embedded problem from a few
// random 3-SAT clauses.
func testEmbeddedProblem(t testing.TB, seed int64, numClauses int) *EmbeddedProblem {
	rng := rand.New(rand.NewSource(seed))
	g := chimera.DWave2000Q()
	var clauses []cnf.Clause
	for i := 0; i < numClauses; i++ {
		perm := rng.Perm(10)[:3]
		c := make(cnf.Clause, 3)
		for j, v := range perm {
			c[j] = cnf.MkLit(cnf.Var(v), rng.Intn(2) == 0)
		}
		clauses = append(clauses, c)
	}
	enc, err := qubo.Encode(clauses)
	if err != nil {
		t.Fatal(err)
	}
	res := embed.Fast(enc, g)
	if res.EmbeddedClauses != numClauses {
		t.Fatalf("embedded %d/%d clauses", res.EmbeddedClauses, numClauses)
	}
	norm, _ := enc.Poly.Normalized()
	is := norm.ToIsing()
	return EmbedIsing(is, res.Embedding, g, ChainStrengthFor(is))
}

func sameSample(a, b Sample) bool {
	if a.BrokenChains != b.BrokenChains || a.HardwareEnergy != b.HardwareEnergy {
		return false
	}
	if len(a.NodeValues) != len(b.NodeValues) {
		return false
	}
	for k, v := range a.NodeValues {
		if w, ok := b.NodeValues[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// TestSampleDeterministicAcrossWorkerCounts is the reproducibility contract:
// for a fixed sampler seed, Sample(ep, n) returns bit-identical reads (and
// the same best index) at every worker count.
func TestSampleDeterministicAcrossWorkerCounts(t *testing.T) {
	ep := testEmbeddedProblem(t, 11, 12)
	const numReads = 16
	var ref ReadSet
	for _, workers := range []int{1, 2, 8} {
		s := NewSampler(DefaultSchedule(), DWave2000QNoise, 99)
		s.Workers = workers
		rs := s.Sample(ep, numReads)
		if len(rs.Samples) != numReads {
			t.Fatalf("workers=%d: got %d reads, want %d", workers, len(rs.Samples), numReads)
		}
		if workers == 1 {
			ref = rs
			continue
		}
		if rs.Best != ref.Best {
			t.Fatalf("workers=%d: best read %d, serial best %d", workers, rs.Best, ref.Best)
		}
		for i := range rs.Samples {
			if !sameSample(rs.Samples[i], ref.Samples[i]) {
				t.Fatalf("workers=%d: read %d differs from serial run", workers, i)
			}
		}
	}
}

// TestSampleSuccessiveCallsDrawFreshRandomness guards the call-counter
// mixing: two Sample calls on the same problem must not return identical
// read sets (else every hybrid iteration would see the same device output).
func TestSampleSuccessiveCallsDrawFreshRandomness(t *testing.T) {
	ep := testEmbeddedProblem(t, 12, 12)
	s := NewSampler(DefaultSchedule(), DWave2000QNoise, 7)
	a := s.Sample(ep, 8)
	b := s.Sample(ep, 8)
	same := true
	for i := range a.Samples {
		if !sameSample(a.Samples[i], b.Samples[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two successive Sample calls returned identical read sets")
	}
}

// TestSampleBestIsLowestEnergy checks the best-read selection and its
// earliest-index tie-break.
func TestSampleBestIsLowestEnergy(t *testing.T) {
	ep := testEmbeddedProblem(t, 13, 10)
	s := NewSampler(DefaultSchedule(), DWave2000QNoise, 3)
	rs := s.Sample(ep, 12)
	for i, smp := range rs.Samples {
		if smp.HardwareEnergy < rs.Samples[rs.Best].HardwareEnergy {
			t.Fatalf("read %d has energy %v < best read %d energy %v",
				i, smp.HardwareEnergy, rs.Best, rs.Samples[rs.Best].HardwareEnergy)
		}
		if smp.HardwareEnergy == rs.Samples[rs.Best].HardwareEnergy && i < rs.Best {
			t.Fatalf("tie at energy %v not broken towards earliest read (%d vs %d)",
				smp.HardwareEnergy, i, rs.Best)
		}
	}
	if got := rs.BestSample(); !sameSample(got, rs.Samples[rs.Best]) {
		t.Fatal("BestSample does not return Samples[Best]")
	}
}

// TestSampleConcurrentCallers exercises concurrent Sample calls on one
// sampler and one shared EmbeddedProblem (meaningful under -race).
func TestSampleConcurrentCallers(t *testing.T) {
	ep := testEmbeddedProblem(t, 14, 10)
	s := NewSampler(DefaultSchedule(), DWave2000QNoise, 21)
	s.Workers = 4
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 3; iter++ {
				rs := s.Sample(ep, 6)
				if len(rs.Samples) != 6 {
					t.Errorf("got %d reads, want 6", len(rs.Samples))
				}
			}
		}()
	}
	wg.Wait()
}

// TestSampleOnceMatchesSampleInto pins the wrapper to the zero-alloc path.
func TestSampleOnceMatchesSampleInto(t *testing.T) {
	ep := testEmbeddedProblem(t, 15, 10)
	a := NewSampler(DefaultSchedule(), DWave2000QNoise, 5)
	b := NewSampler(DefaultSchedule(), DWave2000QNoise, 5)
	var out Sample
	for i := 0; i < 4; i++ {
		got := a.SampleOnce(ep)
		b.SampleInto(ep, &out)
		if !sameSample(got, out) {
			t.Fatalf("iteration %d: SampleOnce and SampleInto diverge", i)
		}
	}
}

// TestSampleIntoZeroAllocs asserts the steady-state zero-allocation contract
// of the sweep kernel: after warm-up, repeated SampleInto on the same problem
// allocates nothing (noise path included).
func TestSampleIntoZeroAllocs(t *testing.T) {
	ep := testEmbeddedProblem(t, 16, 12)
	s := NewSampler(DefaultSchedule(), DWave2000QNoise, 9)
	var out Sample
	s.SampleInto(ep, &out) // warm up scratch and the NodeValues map
	allocs := testing.AllocsPerRun(20, func() {
		s.SampleInto(ep, &out)
	})
	if allocs != 0 {
		t.Fatalf("SampleInto allocates %.1f objects per run in steady state, want 0", allocs)
	}
}

// TestMaxAbsPrecomputed checks the finalize-time coefficient scale against a
// direct scan of the embedded problem.
func TestMaxAbsPrecomputed(t *testing.T) {
	ep := testEmbeddedProblem(t, 17, 12)
	want := 0.0
	for _, v := range ep.H {
		if a := math.Abs(v); a > want {
			want = a
		}
	}
	for _, j := range ep.adjJ {
		if a := math.Abs(j); a > want {
			want = a
		}
	}
	if ep.maxAbs != want {
		t.Fatalf("precomputed maxAbs %v, scan says %v", ep.maxAbs, want)
	}
	if want == 0 {
		t.Fatal("degenerate test problem: all coefficients zero")
	}
}

// TestPairIDsSymmetric checks that the CSR pair index maps both directions of
// every coupler to one id, and every id to exactly two entries.
func TestPairIDsSymmetric(t *testing.T) {
	ep := testEmbeddedProblem(t, 18, 12)
	count := make(map[int32]int, ep.numPairs)
	for i := 0; i < len(ep.Qubits); i++ {
		for k := ep.adjStart[i]; k < ep.adjStart[i+1]; k++ {
			count[ep.adjPair[k]]++
			// Find the reverse entry and require the same pair id and J.
			o := ep.adjOther[k]
			found := false
			for r := ep.adjStart[o]; r < ep.adjStart[o+1]; r++ {
				if int(ep.adjOther[r]) == i {
					found = true
					if ep.adjPair[r] != ep.adjPair[k] {
						t.Fatalf("pair id mismatch for coupler (%d,%d)", i, o)
					}
					if ep.adjJ[r] != ep.adjJ[k] {
						t.Fatalf("asymmetric J for coupler (%d,%d)", i, o)
					}
				}
			}
			if !found {
				t.Fatalf("coupler (%d,%d) has no reverse CSR entry", i, o)
			}
		}
	}
	if len(count) != ep.numPairs {
		t.Fatalf("%d distinct pair ids, numPairs says %d", len(count), ep.numPairs)
	}
	for id, c := range count {
		if c != 2 {
			t.Fatalf("pair id %d appears in %d entries, want 2", id, c)
		}
	}
}
