package hyqsat

import (
	"math/rand"
	"testing"
	"time"

	"hyqsat/internal/cnf"
	"hyqsat/internal/sat"
)

// TestMultiReadDeterministicAcrossWorkers pins the solver-level
// reproducibility contract: with multi-read sampling enabled, the verdict,
// model, and every hybrid counter are identical at any worker count.
func TestMultiReadDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := random3SAT(rng, 30, 125)
	run := func(workers int) Result {
		o := simOpts(5)
		o.NumReads = 6
		o.SampleWorkers = workers
		return New(f.Copy(), o).Solve()
	}
	ref := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if got.Status != ref.Status {
			t.Fatalf("workers=%d: status %v, serial %v", workers, got.Status, ref.Status)
		}
		if len(got.Model) != len(ref.Model) {
			t.Fatalf("workers=%d: model length differs", workers)
		}
		for i := range got.Model {
			if got.Model[i] != ref.Model[i] {
				t.Fatalf("workers=%d: model differs at var %d", workers, i)
			}
		}
		gs, rs := got.Stats, ref.Stats
		if gs.QACalls != rs.QACalls || gs.QAReads != rs.QAReads ||
			gs.WarmupIterations != rs.WarmupIterations ||
			gs.EmbedCacheHits != rs.EmbedCacheHits ||
			gs.EmbedCacheMisses != rs.EmbedCacheMisses ||
			gs.Strategy1Hits != rs.Strategy1Hits ||
			gs.Strategy2Hits != rs.Strategy2Hits ||
			gs.Strategy3Hits != rs.Strategy3Hits ||
			gs.Strategy4Hits != rs.Strategy4Hits ||
			gs.BrokenChains != rs.BrokenChains {
			t.Fatalf("workers=%d: hybrid counters differ from serial run:\n%+v\nvs\n%+v",
				workers, gs, rs)
		}
	}
}

// TestMultiReadCountersAndDeviceTime checks that reads are counted and the
// modelled device time charges a full multi-read access (programming once,
// then NumReads anneal+readout cycles) per QA call.
func TestMultiReadCountersAndDeviceTime(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	f := random3SAT(rng, 25, 100)
	o := simOpts(7)
	o.NumReads = 4
	r := New(f, o).Solve()
	st := r.Stats
	if st.QACalls == 0 {
		t.Fatal("no QA calls in a hybrid solve")
	}
	if st.QAReads != int64(st.QACalls)*4 {
		t.Fatalf("QAReads = %d with %d calls at NumReads=4, want %d",
			st.QAReads, st.QACalls, st.QACalls*4)
	}
	want := time.Duration(st.QACalls) * o.Timing.AccessTime(4)
	if st.QADevice != want {
		t.Fatalf("QADevice = %v, want %d×AccessTime(4) = %v", st.QADevice, st.QACalls, want)
	}
}

// TestSingleReadDeviceTimeUnchanged pins the default: NumReads unset charges
// exactly the paper's single-sample access per call, as before.
func TestSingleReadDeviceTimeUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	f := random3SAT(rng, 20, 80)
	o := simOpts(9)
	r := New(f, o).Solve()
	st := r.Stats
	if st.QACalls == 0 {
		t.Fatal("no QA calls in a hybrid solve")
	}
	if st.QAReads != int64(st.QACalls) {
		t.Fatalf("QAReads = %d, want one per call (%d)", st.QAReads, st.QACalls)
	}
	if want := time.Duration(st.QACalls) * o.Timing.SampleTime(); st.QADevice != want {
		t.Fatalf("QADevice = %v, want %v", st.QADevice, want)
	}
}

// TestEmbedCacheCountersConsistent checks the cache bookkeeping: every QA
// call went through exactly one lookup, and repeated queues actually hit.
func TestEmbedCacheCountersConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	f := random3SAT(rng, 20, 85)
	o := simOpts(3)
	o.WarmupIterations = 200 // enough iterations for queue repeats
	r := New(f, o).Solve()
	st := r.Stats
	lookups := st.EmbedCacheHits + st.EmbedCacheMisses
	if lookups < st.QACalls {
		t.Fatalf("cache lookups %d < QA calls %d", lookups, st.QACalls)
	}
	if st.EmbedCacheMisses == 0 && lookups > 0 {
		t.Fatal("cache reported hits with no prior misses")
	}
	if r.Status == sat.Sat && !cnf.FromBools(r.Model[:f.NumVars]).Satisfies(f) {
		t.Fatal("invalid model")
	}
}

// The direct lookup/store/eviction unit tests for the sharded LRU cache live
// in cache_test.go.
