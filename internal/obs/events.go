// Package obs is the solve-trace telemetry layer of the reproduction: a
// structured event tracer for the hybrid solve pipeline, a stdlib-only
// metrics registry (counters, gauges, fixed-bucket histograms with atomic
// updates), and live HTTP introspection endpoints.
//
// The package is deliberately dependency-free (stdlib only) and sits below
// every solver package: internal/sat emits conflict/restart events,
// internal/anneal emits per-read QA sampling outcomes, internal/hyqsat emits
// embed/strategy events and phase spans, and internal/portfolio emits race
// progress. The paper's evaluation aggregates (Fig 11 phase breakdown, Fig 9
// outcome classification, Table III iteration counts) are reconstructible
// from a recorded trace — see PhaseBreakdown and OutcomeCounts in replay.go.
//
// Overhead contract: with tracing disabled (the Nop tracer, or a nil tracer
// at the emission sites) no events are constructed, so hot paths — in
// particular the internal/anneal sweep kernel — stay zero-allocation.
// Emission sites guard with Tracer.Enabled() before building an event.
package obs

// Event is one structured solve event. Implementations are small value types
// that encode losslessly to JSON; Kind returns the stable type tag used as
// the "t" field of the JSONL envelope.
type Event interface {
	Kind() string
}

// TraceSchemaVersion is the schema version stamped into the header record of
// every JSONL trace. Bump it when the envelope or an event payload changes
// incompatibly.
const TraceSchemaVersion = 1

// headerKind is the envelope type tag of the header record.
const headerKind = "header"

// HeaderEvent is the first record of a JSONL trace: the schema version and
// the wall-clock time (microseconds since the Unix epoch) corresponding to
// envelope timestamp 0. Event timestamps stay monotonic and sink-relative;
// the header is what lets offline tooling align or merge traces recorded by
// different processes.
type HeaderEvent struct {
	Schema  int   `json:"schema"`
	StartUs int64 `json:"start_us"`
}

// Kind implements Event.
func (HeaderEvent) Kind() string { return headerKind }

// ConflictEvent records one CDCL conflict: the running conflict count, the
// decision level the conflict occurred at (conflict depth), the learnt
// clause's length and LBD, and the backjump target level. A root-level
// conflict (unsatisfiability established) has LearntLen 0.
type ConflictEvent struct {
	Conflicts int64 `json:"conflicts"`
	Level     int   `json:"level"`
	LearntLen int   `json:"learnt_len"`
	LBD       int   `json:"lbd"`
	Backjump  int   `json:"backjump"`
}

// Kind implements Event.
func (ConflictEvent) Kind() string { return "conflict" }

// RestartEvent records one CDCL restart.
type RestartEvent struct {
	Restarts  int64 `json:"restarts"`
	Conflicts int64 `json:"conflicts"`
}

// Kind implements Event.
func (RestartEvent) Kind() string { return "restart" }

// QACallEvent records one multi-read device access: per-read hardware
// energies and chain-break counts (the diagnostic signals of annealer-backed
// solving), the chain shape of the embedded problem (count, longest chain,
// total chained qubits — chain length drives annealer error, so quality
// analytics bucket break rates by it), the best-energy read index, and the
// modelled device time charged for the access.
type QACallEvent struct {
	Call         int64     `json:"call"`
	Reads        int       `json:"reads"`
	Energies     []float64 `json:"energies"`
	BrokenChains []int     `json:"broken_chains"`
	Chains       int       `json:"chains"`
	MaxChainLen  int       `json:"max_chain_len,omitempty"`
	ChainQubits  int       `json:"chain_qubits,omitempty"`
	Best         int       `json:"best"`
	// BatchSize is the number of co-tiled member requests sharing the device
	// program this access ran in (0 or 1 = a solo program). When >1, DeviceNs
	// carries this member's pro-rata share of the single program's access
	// time — the per-member events of one batch sum exactly to the program's
	// total, so summing DeviceNs over a trace never double-counts batched
	// device time.
	BatchSize int   `json:"batch_size,omitempty"`
	DeviceNs  int64 `json:"device_ns"`
}

// Kind implements Event.
func (QACallEvent) Kind() string { return "qa_call" }

// BatchEvent records one batched device program assembled by the qbatch
// scheduler: how many member requests were co-tiled, total reads across
// members, the read count actually programmed (max over members — every read
// cycle reads all members out together), merged problem size, the modelled
// device time of the single program, and the device time saved versus running
// each member as its own program.
type BatchEvent struct {
	Members       int   `json:"members"`
	TotalReads    int   `json:"total_reads"`
	ProgramReads  int   `json:"program_reads"`
	ActiveQubits  int   `json:"active_qubits,omitempty"`
	DeviceNs      int64 `json:"device_ns"`
	DeviceSavedNs int64 `json:"device_saved_ns"`
}

// Kind implements Event.
func (BatchEvent) Kind() string { return "qa_batch" }

// EmbedEvent records one frontend embedding step: the clause-queue length,
// how many clauses were embedded (0 = unusable queue, skipped to CDCL),
// whether the embedding cache served the queue, and the hardware cell usage
// (active qubits out of the hardware graph's qubits).
type EmbedEvent struct {
	Iteration      int64 `json:"iteration"`
	QueueLen       int   `json:"queue_len"`
	Embedded       int   `json:"embedded"`
	CacheHit       bool  `json:"cache_hit"`
	ActiveQubits   int   `json:"active_qubits"`
	HardwareQubits int   `json:"hardware_qubits"`
}

// Kind implements Event.
func (EmbedEvent) Kind() string { return "embed" }

// StrategyHitEvent records the backend's classification of one QA access
// (the Fig 9 outcome taxonomy) and which feedback strategy fired on it.
// Strategy is 1, 2, 3 or 4 per the paper, or 0 when the class's strategy was
// disabled by the ablation mask. One event is emitted per QA-guided
// iteration, so class counts over a trace reconstruct Fig 9.
type StrategyHitEvent struct {
	Iteration   int64   `json:"iteration"`
	Class       string  `json:"class"`
	Strategy    int     `json:"strategy"`
	Energy      float64 `json:"energy"`
	AllEmbedded bool    `json:"all_embedded"`
}

// Kind implements Event.
func (StrategyHitEvent) Kind() string { return "strategy" }

// PhaseSpan records one contiguous stay in a pipeline phase, with monotonic
// start/end offsets (nanoseconds since the phase tracker's origin). Spans of
// the same tracker are disjoint by construction — the tracker counts any
// overlap as a violation (see PhaseTracker).
type PhaseSpan struct {
	Phase   string `json:"phase"`
	StartNs int64  `json:"start_ns"`
	EndNs   int64  `json:"end_ns"`
}

// Kind implements Event.
func (PhaseSpan) Kind() string { return "phase_span" }

// Duration returns the span length in nanoseconds.
func (p PhaseSpan) Duration() int64 { return p.EndNs - p.StartNs }

// PortfolioEvent records portfolio-race progress: an entrant starting a
// conflict-budget window ("window"), finishing with a verdict ("sat",
// "unsat", "error"), or being declared the race winner ("winner").
type PortfolioEvent struct {
	Entrant string `json:"entrant"`
	Status  string `json:"status"`
	Budget  int64  `json:"budget,omitempty"`
	Err     string `json:"err,omitempty"`
}

// Kind implements Event.
func (PortfolioEvent) Kind() string { return "portfolio" }

// BreakerEvent records one circuit-breaker state transition of the QPU
// access layer: closed → open when consecutive submissions keep failing,
// open → half-open when the cooldown elapses and a probe is admitted,
// half-open → closed (probe succeeded, QA traffic resumes) or half-open →
// open (probe failed, back to cooldown).
type BreakerEvent struct {
	Backend  string `json:"backend"`
	From     string `json:"from"`
	To       string `json:"to"`
	Failures int    `json:"failures"` // consecutive failures at transition time
}

// Kind implements Event.
func (BreakerEvent) Kind() string { return "breaker" }

// QPURetryEvent records one retry of a failed QPU submission: which call and
// attempt is being retried, the backoff slept before it, and the error that
// caused it.
type QPURetryEvent struct {
	Call      int64  `json:"call"`
	Attempt   int    `json:"attempt"`
	BackoffNs int64  `json:"backoff_ns"`
	Err       string `json:"err"`
}

// Kind implements Event.
func (QPURetryEvent) Kind() string { return "qpu_retry" }

// QPUFaultEvent records one fault injected by the deterministic fault
// injector (timeout, transient, outage, slow, truncate, corrupt, drift) —
// the ground truth chaos tests correlate observed behaviour against.
type QPUFaultEvent struct {
	Call  int64  `json:"call"`
	Fault string `json:"fault"`
}

// Kind implements Event.
func (QPUFaultEvent) Kind() string { return "qpu_fault" }

// DegradeEvent records the hybrid loop degrading one warm-up iteration to
// pure CDCL because the QA backend failed (submission error, open breaker, or
// a read set that failed boundary validation). The solve continues — CDCL
// absorbs the missing guidance — so degradation is an availability signal,
// not a correctness one.
type DegradeEvent struct {
	Iteration int64  `json:"iteration"`
	Err       string `json:"err"`
}

// Kind implements Event.
func (DegradeEvent) Kind() string { return "degrade" }

// ShareEvent summarises the clause-sharing bus at the end of a race or cube
// run: clauses accepted for distribution, clauses attached by importers,
// offers rejected by the size/LBD filter, offers dropped as fingerprint
// duplicates, and deliveries lost to full peer inboxes.
type ShareEvent struct {
	Exported   int64 `json:"exported"`
	Imported   int64 `json:"imported"`
	Filtered   int64 `json:"filtered"`
	Duplicates int64 `json:"duplicates"`
	Dropped    int64 `json:"dropped"`
}

// Kind implements Event.
func (ShareEvent) Kind() string { return "share" }

// CubeEvent records the fate of one assumption cube in a cube-and-conquer
// run: which worker took it, how it ended ("refuted" — UNSAT under the cube,
// "sat" — model found, "abandoned" — run cancelled first), and the worker's
// cumulative conflict count at that point.
type CubeEvent struct {
	Cube      int    `json:"cube"`
	Worker    int    `json:"worker"`
	Status    string `json:"status"`
	Conflicts int64  `json:"conflicts"`
}

// Kind implements Event.
func (CubeEvent) Kind() string { return "cube" }

// JobEvent records a lifecycle transition of one service job in hyqsatd:
// "accepted" (admitted to the queue), "rejected" (admission refused — Err
// carries the stable reason tag: "queue_full", "quota", "draining", ...),
// "started", "done" (Verdict "sat"/"unsat"/"unknown"), "failed", and
// "checkpointed" (drain interrupted the solve; the job is resumable). QueueMs
// is the time spent waiting for a worker, RunMs the solve time; both are zero
// until the respective phase has happened.
type JobEvent struct {
	Job     string `json:"job"`
	Tenant  string `json:"tenant"`
	State   string `json:"state"`
	Verdict string `json:"verdict,omitempty"`
	Err     string `json:"err,omitempty"`
	QueueMs int64  `json:"queue_ms,omitempty"`
	RunMs   int64  `json:"run_ms,omitempty"`
}

// Kind implements Event.
func (JobEvent) Kind() string { return "job" }
