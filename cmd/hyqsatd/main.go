// Command hyqsatd serves the hybrid solver over HTTP/JSON, engineered for
// failure first: bounded job queue with reject-don't-buffer admission,
// per-tenant quotas on concurrent jobs and modelled QA device time,
// idempotency keys against double-submits, client deadline propagation, and
// graceful drain on SIGTERM/SIGINT (stop accepting, finish or checkpoint
// in-flight jobs, flush traces).
//
// API (see DESIGN.md §14 and the README's "Running as a service"):
//
//	POST /v1/jobs        {"cnf": "<DIMACS>", "seed": n} → 202 {"id": ...}
//	GET  /v1/jobs/{id}   job status / certified verdict
//	POST /v1/qpu/sample  remote QA sampling for qpu.Remote clients
//	GET  /healthz        liveness + drain state
//
// A second -obs address exposes the usual introspection endpoints
// (/metrics, /debug/pprof, /trace/flight) out-of-band, so operational
// scraping never competes with solve traffic for the API listener.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"hyqsat/internal/obs"
	"hyqsat/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the testable main: ready (when non-nil) receives the API base URL
// once the service is listening, so tests can drive a real daemon without
// races or port guessing.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("hyqsatd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8077", "API listen address (host:port; :0 picks a free port)")
	obsAddr := fs.String("obs", "", "introspection listen address (/metrics, /debug/pprof); empty disables")
	queueDepth := fs.Int("queue", 16, "job queue depth; a full queue refuses with 429")
	workers := fs.Int("workers", 2, "solve worker count")
	maxConcurrent := fs.Int("tenant-jobs", 4, "per-tenant concurrent job quota")
	deviceBudget := fs.Duration("tenant-device", 50*time.Millisecond, "per-tenant QA device-time bucket")
	deviceRefill := fs.Duration("tenant-refill", 5*time.Millisecond, "device-time refill per second; 0 makes the budget hard")
	solveTimeout := fs.Duration("solve-timeout", 2*time.Minute, "per-job solve cap")
	drainGrace := fs.Duration("drain-grace", 5*time.Second, "how long drain lets in-flight solves finish before checkpointing them")
	traceFile := fs.String("trace", "", "append the JSONL solve trace to this file")
	qpuWindow := fs.Duration("qpu-window", 0, "QPU batching window: concurrent sample/solve QA accesses within it share one device program (0 = default 100µs, negative disables batching)")
	qpuMembers := fs.Int("qpu-batch-members", 0, "max requests per batched device program (0 = default)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the daemon's lifetime to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile taken at drain to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "hyqsatd:", err)
		return 1
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fail(err)
		}
		defer func() {
			runtime.GC() // settle the heap so the profile reflects live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "hyqsatd: memprofile:", err)
			}
			f.Close()
		}()
	}

	reg := obs.NewRegistry()
	ring := obs.NewRing(4096)
	sinks := []obs.Tracer{ring}
	flush := func() error { return nil }
	if *traceFile != "" {
		f, err := os.OpenFile(*traceFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		sink := obs.NewJSONLSink(f)
		sinks = append(sinks, sink)
		flush = sink.Flush
	}

	svc := serve.New(serve.Config{
		QueueDepth: *queueDepth,
		Workers:    *workers,
		DefaultQuota: serve.TenantQuota{
			MaxConcurrent: *maxConcurrent,
			DeviceBudget:  *deviceBudget,
			DeviceRefill:  *deviceRefill,
		},
		SolveTimeout:    *solveTimeout,
		DrainGrace:      *drainGrace,
		BatchWindow:     *qpuWindow,
		BatchMaxMembers: *qpuMembers,
		Trace:           obs.Tee(sinks...),
		Metrics:         reg,
		Flush:           flush,
	})

	api, err := obs.Serve(*addr, svc.Handler())
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stderr, "hyqsatd: serving on http://%s\n", api.Addr)
	if ready != nil {
		ready <- "http://" + api.Addr
	}

	var obsSrv *obs.Server
	if *obsAddr != "" {
		obsSrv, err = obs.Serve(*obsAddr, obs.Handler(reg, ring, nil))
		if err != nil {
			api.Close()
			return fail(err)
		}
		stopSampler := obs.StartRuntimeSampler(reg, 0)
		defer stopSampler()
		fmt.Fprintf(stderr, "hyqsatd: introspection on http://%s\n", obsSrv.Addr)
	}

	// Serve until a shutdown signal or a dead listener. SIGTERM and SIGINT
	// both drain: admission flips to 503, in-flight jobs finish or
	// checkpoint within the grace period, traces flush, then exit.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	obsErr := func() <-chan error {
		if obsSrv != nil {
			return obsSrv.Err()
		}
		return nil
	}()
	exit := 0
	select {
	case <-sigCtx.Done():
		fmt.Fprintln(stderr, "hyqsatd: shutdown signal, draining")
	case err, ok := <-api.Err():
		if ok && err != nil {
			fmt.Fprintln(stderr, "hyqsatd: api server died:", err)
			exit = 1
		}
	case err, ok := <-obsErr:
		// A dead introspection listener is loud but not fatal: solves keep
		// serving, only the scrape path is gone.
		if ok && err != nil {
			fmt.Fprintln(stderr, "hyqsatd: introspection server died:", err)
		}
		<-sigCtx.Done()
		fmt.Fprintln(stderr, "hyqsatd: shutdown signal, draining")
	}

	// Stop accepting before draining, so nothing new lands in the queue
	// while it empties.
	if err := api.Close(); err != nil {
		fmt.Fprintln(stderr, "hyqsatd: api close:", err)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace+30*time.Second)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		fmt.Fprintln(stderr, "hyqsatd: drain:", err)
		exit = 1
	}
	if obsSrv != nil {
		if err := obsSrv.Close(); err != nil {
			fmt.Fprintln(stderr, "hyqsatd: introspection close:", err)
		}
	}
	fmt.Fprintln(stdout, "hyqsatd: drained cleanly")
	return exit
}
