package portfolio

import (
	"context"
	"strings"
	"testing"

	"hyqsat/internal/gen"
	"hyqsat/internal/obs"
	"hyqsat/internal/sat"
)

// TestRaceEventAttribution pins the attribution contract of a portfolio
// race: every emitted event carries the race's solve id, race-level events
// (windows, verdicts, winner, share) come from "race", and each entrant's
// solver events come from that entrant's name — even though the hybrid
// solver scopes itself as "hyqsat" internally, the outer entrant scope wins.
func TestRaceEventAttribution(t *testing.T) {
	ring := obs.NewRing(4096)
	inst := gen.SatisfiableRandom3SAT(30, 120, 11)
	out, err := SolveWith(context.Background(), inst.Formula,
		[]Entrant{MiniSATEntrant(1), HyQSATEntrant(3)},
		RaceOptions{Trace: ring, Share: &ShareOptions{}})
	if err != nil {
		t.Fatalf("race: %v", err)
	}
	if out.Result.Status != sat.Sat {
		t.Fatalf("status = %v, want Sat", out.Result.Status)
	}

	events := ring.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	var solveID string
	bySrc := map[string]int{}
	for _, ev := range events {
		if solveID == "" {
			solveID = ev.Solve
		}
		if ev.Solve == "" || ev.Solve != solveID {
			t.Fatalf("event %s has solve id %q, want every event under %q",
				ev.T, ev.Solve, solveID)
		}
		if ev.Src == "" {
			t.Fatalf("unattributed %s event", ev.T)
		}
		bySrc[ev.Src]++
		switch pe := ev.E.(type) {
		case obs.PortfolioEvent:
			// Windows and verdicts come from the entrant that ran them; the
			// winner announcement comes from the race itself.
			want := pe.Entrant
			if pe.Status == "winner" {
				want = "race"
			}
			if ev.Src != want {
				t.Fatalf("portfolio %q event from %q, want %q", pe.Status, ev.Src, want)
			}
		case obs.ShareEvent:
			if ev.Src != "race" {
				t.Fatalf("share event from %q, want race", ev.Src)
			}
		case obs.ConflictEvent, obs.RestartEvent, obs.PhaseSpan:
			if ev.Src == "race" {
				t.Fatalf("solver-level %s event attributed to the race", ev.T)
			}
		}
	}
	for _, want := range []string{"race", "minisat/s1", "hyqsat/s3"} {
		if bySrc[want] == 0 {
			t.Errorf("no events from source %q; sources seen: %v", want, bySrc)
		}
	}
}

// TestCubeEventAttribution: cube runs attribute run-level events (share) to
// "cube", per-cube verdicts to their worker "cube/w<i>", and all of it under
// one solve id.
func TestCubeEventAttribution(t *testing.T) {
	ring := obs.NewRing(4096)
	inst := gen.SatisfiableRandom3SAT(40, 168, 7)
	out, err := SolveCubes(context.Background(), inst.Formula, CubeOptions{
		Depth:          2,
		Workers:        2,
		ProbeConflicts: 1, // keep the probe inconclusive so cubes actually run
		Trace:          ring,
		Share:          &ShareOptions{},
	})
	if err != nil {
		t.Fatalf("cubes: %v", err)
	}
	if out.Result.Status != sat.Sat {
		t.Fatalf("status = %v, want Sat", out.Result.Status)
	}

	var solveID string
	var cubeEvents, workerSrcs int
	for _, ev := range ring.Events() {
		if solveID == "" {
			solveID = ev.Solve
		}
		if ev.Solve != solveID {
			t.Fatalf("event %s under solve %q, want %q", ev.T, ev.Solve, solveID)
		}
		switch ev.E.(type) {
		case obs.CubeEvent:
			cubeEvents++
			if !strings.HasPrefix(ev.Src, "cube/w") {
				t.Fatalf("cube verdict from %q, want cube/w<i>", ev.Src)
			}
		case obs.ShareEvent:
			if ev.Src != "cube" {
				t.Fatalf("share event from %q, want cube", ev.Src)
			}
		}
		if strings.HasPrefix(ev.Src, "cube/w") {
			workerSrcs++
		}
	}
	if solveID == "" {
		t.Fatal("events carry no solve id")
	}
	if cubeEvents == 0 {
		t.Fatal("no cube verdict events recorded")
	}
	if workerSrcs == 0 {
		t.Fatal("no worker-attributed events recorded")
	}
}