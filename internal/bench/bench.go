// Package bench reproduces every table and figure of the paper's evaluation
// (§VI): per-experiment runners generate the paper's workloads, execute the
// solvers, and print the same rows/series the paper reports. Absolute times
// differ from the paper (different CPU; QA device time is modelled), but the
// shapes — who wins, by what factor, where crossovers fall — are the
// reproduction target. EXPERIMENTS.md records paper-vs-measured values.
package bench

import (
	"fmt"
	"io"
	"math"
	"strings"

	"hyqsat/internal/obs"
)

// Config scales the experiments. The paper's instance counts (e.g. 100
// problems per AI family) are impractical for a quick run; ProblemsPerFamily
// trims every family uniformly.
type Config struct {
	// ProblemsPerFamily caps instances per benchmark family (default 2).
	ProblemsPerFamily int
	// Queues is the number of clause queues for the Fig 13 embedding
	// comparison (paper: 50; default 2).
	Queues int
	// Samples is the number of QA samples for distribution experiments
	// (Fig 8, Fig 15; paper: 1000 per class; default 120).
	Samples int
	// Seed drives all instance generation.
	Seed int64
	// EmbedTimeout bounds each baseline embedder run in the Fig 13
	// comparison, in seconds (paper: 300; default 10).
	EmbedTimeoutSec int
	// Workers bounds the worker pool the iteration-count experiments
	// (Table I/III, Fig 10/14) fan their independent instance runs across;
	// 0 means runtime.NumCPU(). Per-instance seeds keep every report
	// identical at any worker count. Wall-clock experiments ignore it and
	// run serially — see parallelFor.
	Workers int
	// Metrics, when non-nil, receives live progress of the fanned-out
	// experiments: per-experiment bench_<id>_jobs_total /_jobs_done and a
	// job-latency histogram, so a long run can be watched over the
	// introspection endpoints. Nil disables progress accounting entirely.
	Metrics *obs.Registry
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.ProblemsPerFamily == 0 {
		c.ProblemsPerFamily = 2
	}
	if c.Queues == 0 {
		c.Queues = 2
	}
	if c.Samples == 0 {
		c.Samples = 120
	}
	if c.EmbedTimeoutSec == 0 {
		c.EmbedTimeoutSec = 10
	}
	return c
}

// Report is the printable result of one experiment.
type Report struct {
	ID     string // e.g. "table1", "fig13"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row; cells are stringified with %v.
func (r *Report) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	r.Rows = append(r.Rows, row)
}

// Note records a free-form observation below the table.
func (r *Report) Note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the report as an aligned text table.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintln(w, "  note: "+n)
	}
	fmt.Fprintln(w)
}

// String renders the report to a string.
func (r *Report) String() string {
	var sb strings.Builder
	r.Fprint(&sb)
	return sb.String()
}

// reductionStats summarises per-instance reduction ratios the way Table I
// does: arithmetic mean, geometric mean, max, and min.
type reductionStats struct {
	Avg, Geomean, Max, Min float64
}

func summarizeReductions(ratios []float64) reductionStats {
	if len(ratios) == 0 {
		return reductionStats{}
	}
	s := reductionStats{Min: math.Inf(1), Max: math.Inf(-1)}
	logSum := 0.0
	for _, r := range ratios {
		s.Avg += r
		logSum += math.Log(r)
		if r > s.Max {
			s.Max = r
		}
		if r < s.Min {
			s.Min = r
		}
	}
	s.Avg /= float64(len(ratios))
	s.Geomean = math.Exp(logSum / float64(len(ratios)))
	return s
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

// pearson computes the linear correlation coefficient of two series.
func pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	mx, my := mean(x), mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
