package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("hits") != c {
		t.Fatal("Counter not idempotent by name")
	}
	g := r.Gauge("depth")
	g.Set(9)
	g.Add(-2)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
	if r.Gauge("depth") != g {
		t.Fatal("Gauge not idempotent by name")
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	// Observations land in the first bucket whose upper bound is ≥ the value;
	// values above every bound fall into the implicit +Inf bucket.
	for _, v := range []float64{0.5, 1, 5, 10, 99, 100.5} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+5+10+99+100.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	snap := r.Snapshot().Histograms["lat"]
	wantCounts := []int64{2, 2, 1, 1} // ≤1, ≤10, ≤100, +Inf
	for i, w := range wantCounts {
		if snap.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	if r.Histogram("lat", nil) != h {
		t.Fatal("Histogram not idempotent by name")
	}
}

func TestHistogramSortsBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x", []float64{100, 1, 10})
	h.Observe(2)
	snap := r.Snapshot().Histograms["x"]
	if snap.Bounds[0] != 1 || snap.Counts[1] != 1 {
		t.Fatalf("unsorted bounds mishandled: %+v", snap)
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	if want := []float64{1, 2, 4, 8}; !equalF64(exp, want) {
		t.Fatalf("ExpBuckets = %v, want %v", exp, want)
	}
	lin := LinearBuckets(0, 0.5, 3)
	if want := []float64{0, 0.5, 1}; !equalF64(lin, want) {
		t.Fatalf("LinearBuckets = %v, want %v", lin, want)
	}
}

func equalF64(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSnapshotWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("solve_conflicts").Add(12)
	r.Gauge("solve_iteration").Set(3)
	h := r.Histogram("solve_depth", []float64{1, 2})
	h.Observe(1)
	h.Observe(5)
	var sb strings.Builder
	if err := r.Snapshot().WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE solve_conflicts counter\nsolve_conflicts 12\n",
		"# TYPE solve_iteration gauge\nsolve_iteration 3\n",
		`solve_depth_bucket{le="1"} 1`,
		`solve_depth_bucket{le="2"} 1`, // cumulative: nothing landed in (1,2]
		`solve_depth_bucket{le="+Inf"} 2`,
		"solve_depth_sum 6\n",
		"solve_depth_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			h := r.Histogram("h", []float64{10})
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 20))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	h := r.Histogram("h", nil)
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	// Sum of 0..19 repeated 50 times per worker: 190*50*8.
	if want := float64(190 * 50 * 8); math.Abs(h.Sum()-want) > 1e-6 {
		t.Fatalf("histogram sum = %g, want %g", h.Sum(), want)
	}
}
