// Quickstart: build a small 3-SAT formula in code, solve it with the HyQSAT
// hybrid solver, and inspect the solution and the hybrid statistics.
package main

import (
	"fmt"
	"log"

	"hyqsat/internal/cnf"
	"hyqsat/internal/hyqsat"
	"hyqsat/internal/sat"
)

func main() {
	// (x1 ∨ x2 ∨ x3) ∧ (¬x1 ∨ ¬x3 ∨ x4) ∧ (¬x2 ∨ x3 ∨ ¬x4) ∧ (x1 ∨ ¬x2 ∨ x4)
	f := cnf.New(4)
	f.Add(1, 2, 3)
	f.Add(-1, -3, 4)
	f.Add(-2, 3, -4)
	f.Add(1, -2, 4)

	// HardwareOptions emulates the paper's D-Wave 2000Q setup: Chimera
	// 16×16 topology, 130µs per sample, device-like noise. NumReads draws
	// several reads per QA access (in parallel, deterministically) and lets
	// the backend classify the best-energy one.
	opts := hyqsat.HardwareOptions()
	opts.Seed = 42
	opts.NumReads = 4

	r := hyqsat.New(f, opts).Solve()
	if r.Status != sat.Sat {
		log.Fatalf("unexpected status %v", r.Status)
	}

	fmt.Println("status:", r.Status)
	for i := 0; i < f.NumVars; i++ {
		fmt.Printf("  x%d = %v\n", i+1, r.Model[i])
	}
	if !cnf.FromBools(r.Model[:f.NumVars]).Satisfies(f) {
		log.Fatal("model check failed")
	}
	st := r.Stats
	fmt.Printf("iterations: %d (warm-up %d), QA calls: %d (%d reads), clauses accelerated: %d\n",
		st.SAT.Iterations, st.WarmupIterations, st.QACalls, st.QAReads, st.EmbeddedClauses)
	fmt.Printf("embedding cache: %d hits / %d misses\n", st.EmbedCacheHits, st.EmbedCacheMisses)
	fmt.Printf("time: frontend %v + QA %v + backend %v + CDCL %v = %v\n",
		st.Frontend, st.QADevice, st.Backend, st.CDCL, st.Total())
}
