// Package topo models quantum-annealer hardware graphs behind one Topology
// interface, so the embedding layers (embed.Fast, the clause-tile template
// instantiator, the minor-embedding heuristics) can target any qubit fabric.
//
// Two concrete topologies are provided:
//
//   - Chimera(M,N,L): the D-Wave 2000Q fabric the HyQSAT paper targets — an
//     M×N grid of K_{L,L} unit cells with line couplers along rows/columns.
//   - Pegasus(m): a denser Pegasus-family model (three interleaved Chimera
//     fabrics plus odd and cross-fabric couplers), in the spirit of the
//     D-Wave Advantage generation: higher degree means shorter chains, and
//     chain length drives error rates (Pudenz et al.).
//
// Both precompute CSR adjacency at construction so Neighbors returns a
// subslice view with zero allocations — it sits under the routing inner loop
// of embed.Fast and under embed.Verify.
package topo

import "fmt"

// Edge is an unordered coupler between two qubits, with A < B.
type Edge struct{ A, B int }

// Tile is one K_{L,L} unit cell of a topology: every working qubit on side A
// shares a coupler with every working qubit on side B (no couplers within a
// side are implied). Tiles are the unit the clause-template embedder
// allocates: one 3-SAT clause gadget per tile. Broken qubits are included in
// the slices; consumers filter with IsBroken.
type Tile struct {
	A, B []int
}

// Topology is a hardware qubit graph: a fixed qubit index space, a coupler
// relation, an optional set of broken (unusable) qubits, and a tiling into
// K_{L,L} unit cells. Implementations precompute CSR adjacency; Neighbors
// must be allocation-free. Mutation (MarkBroken) is construction-time only —
// a topology handed to solvers or samplers must no longer be mutated.
type Topology interface {
	// Name identifies the topology family ("chimera", "pegasus").
	Name() string
	// NumQubits returns the size of the qubit index space, broken included.
	NumQubits() int
	// NumWorking returns the number of usable qubits.
	NumWorking() int
	// IsBroken reports whether qubit q is unusable.
	IsBroken(q int) bool
	// MarkBroken marks qubit q unusable and updates the adjacency.
	MarkBroken(q int)
	// Coupled reports whether working qubits a and b share a coupler.
	Coupled(a, b int) bool
	// Neighbors returns the working qubits coupled to q as a read-only view
	// into precomputed adjacency (nil when q is broken). Callers must not
	// modify or retain it across MarkBroken calls.
	Neighbors(q int) []int
	// Tiles enumerates the K_{L,L} unit cells in a fixed deterministic order.
	Tiles() []Tile
	// Edges enumerates every working coupler.
	Edges() []Edge
}

// New builds a topology by family name with its hardware-default size:
// "chimera" is the D-Wave 2000Q Chimera(16,16,4), "pegasus" the Pegasus(16)
// model. Unknown names error.
func New(name string) (Topology, error) {
	switch name {
	case "chimera":
		return DWave2000Q(), nil
	case "pegasus":
		return AdvantagePegasus(), nil
	default:
		return nil, fmt.Errorf("topo: unknown topology %q (want chimera or pegasus)", name)
	}
}

// intAdj is precomputed compressed-sparse-row adjacency over working qubits:
// the neighbours of q are list[start[q]:start[q+1]]. Rows are []int (not a
// narrower type) so Neighbors can return a subslice view with zero allocs.
type intAdj struct {
	start []int32
	list  []int
}

func (a *intAdj) row(q int) []int {
	s, e := a.start[q], a.start[q+1]
	if s == e {
		return nil
	}
	return a.list[s:e:e]
}

// buildAdj constructs CSR adjacency for n qubits from a neighbour generator:
// forEach(q, emit) must call emit(p) once per coupler partner of q (in the
// order Neighbors should present them), regardless of broken state — broken
// endpoints are filtered here. Rows of broken qubits are left empty.
func buildAdj(n int, broken []bool, forEach func(q int, emit func(p int))) intAdj {
	counts := make([]int32, n+1)
	for q := 0; q < n; q++ {
		if broken[q] {
			continue
		}
		forEach(q, func(p int) {
			if !broken[p] {
				counts[q+1]++
			}
		})
	}
	for q := 0; q < n; q++ {
		counts[q+1] += counts[q]
	}
	adj := intAdj{start: counts, list: make([]int, counts[n])}
	fill := make([]int32, n)
	copy(fill, counts[:n])
	for q := 0; q < n; q++ {
		if broken[q] {
			continue
		}
		forEach(q, func(p int) {
			if !broken[p] {
				adj.list[fill[q]] = p
				fill[q]++
			}
		})
	}
	return adj
}

// edgesFromAdj enumerates working couplers from precomputed adjacency.
func edgesFromAdj(n int, adj *intAdj) []Edge {
	var out []Edge
	for q := 0; q < n; q++ {
		for _, p := range adj.row(q) {
			if q < p {
				out = append(out, Edge{q, p})
			}
		}
	}
	return out
}

// coupledViaAdj implements Coupled by scanning the (bounded-degree) row.
func coupledViaAdj(adj *intAdj, a, b int) bool {
	if a == b {
		return false
	}
	for _, p := range adj.row(a) {
		if p == b {
			return true
		}
	}
	return false
}
