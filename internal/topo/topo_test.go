package topo

import (
	"math/rand"
	"testing"
)

// both returns the two stock topologies at test-friendly sizes.
func both() []Topology {
	return []Topology{NewChimera(4, 4, 4), NewPegasus(4)}
}

func TestNewByName(t *testing.T) {
	g, err := New("chimera")
	if err != nil || g.Name() != "chimera" || g.NumQubits() != 2048 {
		t.Fatalf("New(chimera) = %v, %v", g, err)
	}
	p, err := New("pegasus")
	if err != nil || p.Name() != "pegasus" || p.NumQubits() != 3*15*15*8 {
		t.Fatalf("New(pegasus) = %v, %v", p, err)
	}
	if _, err := New("zephyr"); err == nil {
		t.Fatal("New(zephyr) should error")
	}
}

// Neighbors must agree with Coupled, be symmetric, and exclude broken and
// self qubits — on every topology, including after random breakage.
func TestNeighborsConsistent(t *testing.T) {
	for _, g := range both() {
		rng := rand.New(rand.NewSource(7))
		for round := 0; round < 2; round++ {
			if round == 1 {
				for i := 0; i < g.NumQubits()/20; i++ {
					g.MarkBroken(rng.Intn(g.NumQubits()))
				}
			}
			for q := 0; q < g.NumQubits(); q++ {
				ns := map[int]bool{}
				for _, n := range g.Neighbors(q) {
					if n == q {
						t.Fatalf("%s: self neighbor %d", g.Name(), q)
					}
					if g.IsBroken(n) {
						t.Fatalf("%s: broken neighbor %d of %d", g.Name(), n, q)
					}
					if ns[n] {
						t.Fatalf("%s: duplicate neighbor %d of %d", g.Name(), n, q)
					}
					ns[n] = true
				}
				if g.IsBroken(q) && g.Neighbors(q) != nil {
					t.Fatalf("%s: broken qubit %d has neighbors", g.Name(), q)
				}
			}
			// Coupled agreement + symmetry, spot-checked on random pairs (the
			// full quadratic scan is covered for Chimera in package chimera).
			for i := 0; i < 20000; i++ {
				a, b := rng.Intn(g.NumQubits()), rng.Intn(g.NumQubits())
				if g.Coupled(a, b) != g.Coupled(b, a) {
					t.Fatalf("%s: asymmetric coupling %d,%d", g.Name(), a, b)
				}
				inRow := false
				for _, n := range g.Neighbors(a) {
					if n == b {
						inRow = true
					}
				}
				if inRow != g.Coupled(a, b) {
					t.Fatalf("%s: Neighbors/Coupled disagree for %d,%d", g.Name(), a, b)
				}
			}
		}
	}
}

// Neighbors must not allocate: it is a subslice view into precomputed CSR.
func TestNeighborsZeroAllocs(t *testing.T) {
	for _, g := range both() {
		g := g
		allocs := testing.AllocsPerRun(100, func() {
			for q := 0; q < g.NumQubits(); q += 7 {
				_ = g.Neighbors(q)
			}
		})
		if allocs != 0 {
			t.Fatalf("%s: Neighbors allocates %v allocs/run, want 0", g.Name(), allocs)
		}
	}
}

// Every tile must be a true K_{L,L}: each working A-side qubit coupled to
// each working B-side qubit, and tile qubit sets disjoint across tiles.
func TestTilesAreCompleteBipartite(t *testing.T) {
	for _, g := range both() {
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < g.NumQubits()/30; i++ {
			g.MarkBroken(rng.Intn(g.NumQubits()))
		}
		seen := map[int]bool{}
		tiles := g.Tiles()
		if len(tiles) == 0 {
			t.Fatalf("%s: no tiles", g.Name())
		}
		for ti, tile := range tiles {
			for _, q := range append(append([]int{}, tile.A...), tile.B...) {
				if seen[q] {
					t.Fatalf("%s: qubit %d in two tiles", g.Name(), q)
				}
				seen[q] = true
			}
			for _, a := range tile.A {
				if g.IsBroken(a) {
					continue
				}
				for _, b := range tile.B {
					if g.IsBroken(b) {
						continue
					}
					if !g.Coupled(a, b) {
						t.Fatalf("%s: tile %d qubits %d,%d not coupled", g.Name(), ti, a, b)
					}
				}
			}
		}
	}
}

func TestEdgesMatchNeighbors(t *testing.T) {
	for _, g := range both() {
		g.MarkBroken(3)
		want := 0
		for q := 0; q < g.NumQubits(); q++ {
			want += len(g.Neighbors(q))
		}
		if got := len(g.Edges()); got*2 != want {
			t.Fatalf("%s: %d edges vs %d directed neighbor entries", g.Name(), got, want)
		}
		for _, e := range g.Edges() {
			if e.A >= e.B {
				t.Fatalf("%s: unordered edge %v", g.Name(), e)
			}
			if !g.Coupled(e.A, e.B) {
				t.Fatalf("%s: edge %v not coupled", g.Name(), e)
			}
		}
	}
}

func TestPegasusCoordsRoundTrip(t *testing.T) {
	g := NewPegasus(4)
	seen := map[int]bool{}
	for tt := 0; tt < 3; tt++ {
		for y := 0; y < 3; y++ {
			for x := 0; x < 3; x++ {
				for u := 0; u < 2; u++ {
					for k := 0; k < 4; k++ {
						q := g.Qubit(tt, y, x, u, k)
						if seen[q] {
							t.Fatalf("duplicate qubit id %d", q)
						}
						seen[q] = true
						t2, y2, x2, u2, k2 := g.Coords(q)
						if t2 != tt || y2 != y || x2 != x || u2 != u || k2 != k {
							t.Fatalf("round trip (%d,%d,%d,%d,%d) → %d → (%d,%d,%d,%d,%d)",
								tt, y, x, u, k, q, t2, y2, x2, u2, k2)
						}
					}
				}
			}
		}
	}
	if len(seen) != g.NumQubits() {
		t.Fatalf("enumerated %d ids, want %d", len(seen), g.NumQubits())
	}
}

// Pegasus must be denser than Chimera: the density argument behind shorter
// chains. Interior qubit degree is 9 (4 intra-cell + 2 line + 1 odd +
// 2 cross-copy) vs Chimera's 6.
func TestPegasusDenserThanChimera(t *testing.T) {
	p := NewPegasus(4)
	q := p.Qubit(1, 1, 1, 0, 2) // interior qubit
	if d := len(p.Neighbors(q)); d != 9 {
		t.Fatalf("pegasus interior degree = %d, want 9", d)
	}
	c := NewChimera(4, 4, 4)
	qc := c.Qubit(1, 1, true, 2)
	if d := len(c.Neighbors(qc)); d != 6 {
		t.Fatalf("chimera interior degree = %d, want 6", d)
	}
}
