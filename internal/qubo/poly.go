// Package qubo implements the quantum-annealing problem encoding of the
// HyQSAT paper: decomposition of 3-SAT clauses into sub-clauses with
// auxiliary variables (Eq. 3), quadratic pseudo-boolean objective functions
// per sub-clause (Eq. 4), the summed problem objective (Eq. 5), the paper's
// noise-optimising coefficient adjustment α_ij = d*/d_ij (Eq. 6–9),
// normalisation to the hardware coefficient ranges, and QUBO↔Ising
// conversion for the annealer.
package qubo

import (
	"fmt"
	"math"
	"sort"
)

// Edge is an unordered pair of node indices with U < V, identifying a
// quadratic term.
type Edge struct{ U, V int }

// MkEdge builds a canonical Edge from two distinct node indices.
func MkEdge(a, b int) Edge {
	if a == b {
		panic("qubo: self edge")
	}
	if a > b {
		a, b = b, a
	}
	return Edge{a, b}
}

// Poly is a quadratic pseudo-boolean polynomial over binary variables
// ("nodes"): Offset + Σ Linear[i]·x_i + Σ Quad[{i,j}]·x_i·x_j, with
// x_i ∈ {0,1}. It is the representation of the paper's objective functions
// H (Eq. 2).
type Poly struct {
	Offset float64
	Linear map[int]float64
	Quad   map[Edge]float64
}

// NewPoly returns the zero polynomial.
func NewPoly() *Poly {
	return &Poly{Linear: map[int]float64{}, Quad: map[Edge]float64{}}
}

// Const returns the constant polynomial c.
func Const(c float64) *Poly {
	p := NewPoly()
	p.Offset = c
	return p
}

// Variable returns the polynomial x_i.
func Variable(i int) *Poly {
	p := NewPoly()
	p.Linear[i] = 1
	return p
}

// Copy returns a deep copy of p.
func (p *Poly) Copy() *Poly {
	q := NewPoly()
	q.Offset = p.Offset
	for i, c := range p.Linear {
		q.Linear[i] = c
	}
	for e, c := range p.Quad {
		q.Quad[e] = c
	}
	return q
}

// AddLinear adds c·x_i in place.
func (p *Poly) AddLinear(i int, c float64) {
	p.Linear[i] += c
	if p.Linear[i] == 0 {
		delete(p.Linear, i)
	}
}

// AddQuad adds c·x_i·x_j in place.
func (p *Poly) AddQuad(i, j int, c float64) {
	e := MkEdge(i, j)
	p.Quad[e] += c
	if p.Quad[e] == 0 {
		delete(p.Quad, e)
	}
}

// AddScaled adds factor·q to p in place and returns p.
func (p *Poly) AddScaled(q *Poly, factor float64) *Poly {
	p.Offset += factor * q.Offset
	for i, c := range q.Linear {
		p.AddLinear(i, factor*c)
	}
	for e, c := range q.Quad {
		p.Quad[e] += factor * c
		if p.Quad[e] == 0 {
			delete(p.Quad, e)
		}
	}
	return p
}

// Add returns p + q as a new polynomial.
func (p *Poly) Add(q *Poly) *Poly { return p.Copy().AddScaled(q, 1) }

// Sub returns p − q as a new polynomial.
func (p *Poly) Sub(q *Poly) *Poly { return p.Copy().AddScaled(q, -1) }

// Scale returns factor·p as a new polynomial.
func (p *Poly) Scale(factor float64) *Poly {
	return NewPoly().AddScaled(p, factor)
}

// Mul returns p·q. Both operands must be affine (no quadratic terms), since
// the result must stay within degree two; x_i·x_i simplifies to x_i because
// variables are binary.
func (p *Poly) Mul(q *Poly) *Poly {
	if len(p.Quad) > 0 || len(q.Quad) > 0 {
		panic("qubo: Mul operands must be affine")
	}
	out := NewPoly()
	out.Offset = p.Offset * q.Offset
	for i, c := range p.Linear {
		out.AddLinear(i, c*q.Offset)
	}
	for j, d := range q.Linear {
		out.AddLinear(j, d*p.Offset)
	}
	for i, c := range p.Linear {
		for j, d := range q.Linear {
			if i == j {
				out.AddLinear(i, c*d) // x² = x for binary x
			} else {
				out.AddQuad(i, j, c*d)
			}
		}
	}
	return out
}

// Energy evaluates p at the given binary assignment, where x reports whether
// each node is 1. Nodes absent from x default to 0.
func (p *Poly) Energy(x map[int]bool) float64 {
	e := p.Offset
	for i, c := range p.Linear {
		if x[i] {
			e += c
		}
	}
	for ed, c := range p.Quad {
		if x[ed.U] && x[ed.V] {
			e += c
		}
	}
	return e
}

// EnergyDense evaluates p at a dense assignment indexed by node.
func (p *Poly) EnergyDense(x []bool) float64 {
	e := p.Offset
	for i, c := range p.Linear {
		if x[i] {
			e += c
		}
	}
	for ed, c := range p.Quad {
		if x[ed.U] && x[ed.V] {
			e += c
		}
	}
	return e
}

// Nodes returns the sorted set of node indices appearing in p.
func (p *Poly) Nodes() []int {
	set := map[int]struct{}{}
	for i := range p.Linear {
		set[i] = struct{}{}
	}
	for e := range p.Quad {
		set[e.U] = struct{}{}
		set[e.V] = struct{}{}
	}
	out := make([]int, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// DStar computes the paper's d* (Eq. 6): the largest of |B_i|/2 over linear
// coefficients and |J_ij| over quadratic coefficients. It is the factor the
// hardware normalisation divides by, and hence the quantity that shrinks the
// energy gap.
func (p *Poly) DStar() float64 {
	d := 0.0
	for _, c := range p.Linear {
		if v := math.Abs(c) / 2; v > d {
			d = v
		}
	}
	for _, c := range p.Quad {
		if v := math.Abs(c); v > d {
			d = v
		}
	}
	return d
}

// Normalized returns p divided by its d* — the normalisation step that maps
// coefficients into the hardware ranges B ∈ [−2,2], J ∈ [−1,1] — together
// with the divisor used. A zero polynomial is returned unchanged with d*=1.
func (p *Poly) Normalized() (*Poly, float64) {
	d := p.DStar()
	if d == 0 {
		return p.Copy(), 1
	}
	return p.Scale(1 / d), d
}

// MinEnergyBrute exhaustively minimises p over its nodes (≤ 25 of them) and
// returns the minimum energy and a minimising assignment. Intended for tests
// and tiny instances.
func (p *Poly) MinEnergyBrute() (float64, map[int]bool) {
	nodes := p.Nodes()
	if len(nodes) > 25 {
		panic(fmt.Sprintf("qubo: MinEnergyBrute over %d nodes", len(nodes)))
	}
	best := math.Inf(1)
	var bestX map[int]bool
	x := map[int]bool{}
	for mask := 0; mask < 1<<len(nodes); mask++ {
		for k, n := range nodes {
			x[n] = mask&(1<<k) != 0
		}
		if e := p.Energy(x); e < best {
			best = e
			bestX = map[int]bool{}
			for k, v := range x {
				bestX[k] = v
			}
		}
	}
	return best, bestX
}

// Ising is the spin-model form of a QUBO polynomial: Offset + Σ h_i·s_i +
// Σ J_ij·s_i·s_j with s ∈ {−1,+1}. This is what quantum-annealing hardware
// (and our simulated annealer) executes.
type Ising struct {
	Offset float64
	H      map[int]float64
	J      map[Edge]float64
}

// ToIsing converts p via x = (1+s)/2. Terms are accumulated in sorted key
// order so the floating-point results are bit-for-bit reproducible
// regardless of map iteration order.
func (p *Poly) ToIsing() *Ising {
	is := &Ising{H: map[int]float64{}, J: map[Edge]float64{}}
	is.Offset = p.Offset
	add := func(m map[int]float64, i int, v float64) {
		m[i] += v
		if m[i] == 0 {
			delete(m, i)
		}
	}
	linKeys := make([]int, 0, len(p.Linear))
	for i := range p.Linear {
		linKeys = append(linKeys, i)
	}
	sort.Ints(linKeys)
	for _, i := range linKeys {
		// c·x = c/2 + (c/2)·s
		c := p.Linear[i]
		is.Offset += c / 2
		add(is.H, i, c/2)
	}
	quadKeys := make([]Edge, 0, len(p.Quad))
	for e := range p.Quad {
		quadKeys = append(quadKeys, e)
	}
	sort.Slice(quadKeys, func(a, b int) bool {
		if quadKeys[a].U != quadKeys[b].U {
			return quadKeys[a].U < quadKeys[b].U
		}
		return quadKeys[a].V < quadKeys[b].V
	})
	for _, e := range quadKeys {
		// c·x_u·x_v = c/4·(1 + s_u + s_v + s_u·s_v)
		c := p.Quad[e]
		is.Offset += c / 4
		add(is.H, e.U, c/4)
		add(is.H, e.V, c/4)
		is.J[e] += c / 4
		if is.J[e] == 0 {
			delete(is.J, e)
		}
	}
	return is
}

// Energy evaluates the Ising model at the given spin assignment
// (true = +1, false = −1). Nodes absent from spins default to −1.
func (is *Ising) Energy(spins map[int]bool) float64 {
	sv := func(i int) float64 {
		if spins[i] {
			return 1
		}
		return -1
	}
	e := is.Offset
	for i, h := range is.H {
		e += h * sv(i)
	}
	for ed, j := range is.J {
		e += j * sv(ed.U) * sv(ed.V)
	}
	return e
}
