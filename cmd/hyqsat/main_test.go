package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hyqsat/internal/cnf"
	"hyqsat/internal/gen"
	"hyqsat/internal/obs"
	"hyqsat/internal/verify"
)

const satCNF = "p cnf 3 2\n1 2 3 0\n-1 2 0\n"

// xorSquare is the smallest UNSAT 3-CNF with no unit clauses; being 3-CNF
// already, the hybrid solver's proof premise equals the input formula.
const unsatCNF = "p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n"

// runCLI drives the injected main with stdin input and captures the streams.
func runCLI(t *testing.T, args []string, stdin string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestCLIExitCodes(t *testing.T) {
	for _, solver := range []string{"minisat", "kissat", "hyqsat", "portfolio"} {
		args := []string{"-solver", solver, "-seed", "2"}
		if solver == "hyqsat" {
			args = append(args, "-mode", "sim")
		}
		code, out, errOut := runCLI(t, args, satCNF)
		if code != 10 || !strings.Contains(out, "s SATISFIABLE") {
			t.Fatalf("%s SAT: code=%d out=%q err=%q", solver, code, out, errOut)
		}
		if !strings.Contains(out, "\nv ") && !strings.HasPrefix(out, "v ") {
			t.Fatalf("%s SAT: missing v-line: %q", solver, out)
		}
		code, out, errOut = runCLI(t, args, unsatCNF)
		if code != 20 || !strings.Contains(out, "s UNSATISFIABLE") {
			t.Fatalf("%s UNSAT: code=%d out=%q err=%q", solver, code, out, errOut)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	cases := []struct {
		name  string
		args  []string
		stdin string
	}{
		{"unknown solver", []string{"-solver", "cryptominisat"}, satCNF},
		{"unknown flag", []string{"-frobnicate"}, satCNF},
		{"missing file", []string{"/nonexistent/input.cnf"}, ""},
		{"malformed input", nil, "p cnf 2 9\n1 2 0\n"},
		{"empty input", nil, ""},
		{"proof with portfolio", []string{"-solver", "portfolio", "-proof", filepath.Join(t.TempDir(), "p.drat")}, satCNF},
	}
	for _, tc := range cases {
		if code, out, errOut := runCLI(t, tc.args, tc.stdin); code != 1 {
			t.Fatalf("%s: code=%d out=%q err=%q", tc.name, code, out, errOut)
		} else if errOut == "" {
			t.Fatalf("%s: exit 1 with empty stderr", tc.name)
		}
	}
}

func TestCLIFileInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "in.cnf")
	if err := os.WriteFile(path, []byte(unsatCNF), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runCLI(t, []string{"-solver", "minisat", path}, "ignored stdin")
	if code != 20 {
		t.Fatalf("code=%d out=%q err=%q", code, out, errOut)
	}
}

func TestCLIProofFlagEmitsCheckableDRAT(t *testing.T) {
	for _, solver := range []string{"minisat", "kissat", "hyqsat"} {
		path := filepath.Join(t.TempDir(), solver+".drat")
		code, _, errOut := runCLI(t,
			[]string{"-solver", solver, "-mode", "sim", "-proof", path}, unsatCNF)
		if code != 20 {
			t.Fatalf("%s: code=%d err=%q", solver, code, errOut)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: proof file: %v", solver, err)
		}
		proof, err := verify.ParseDRAT(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: proof does not parse: %v\n%s", solver, err, data)
		}
		premise, err := cnf.ParseDIMACSString(unsatCNF)
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.CheckUnsatProof(premise, proof); err != nil {
			t.Fatalf("%s: emitted proof rejected: %v\n%s", solver, err, data)
		}
	}
}

func TestCLIVerifyFlag(t *testing.T) {
	for _, solver := range []string{"minisat", "kissat", "hyqsat", "portfolio"} {
		args := []string{"-solver", solver, "-mode", "sim", "-verify", "-seed", "3"}
		code, out, errOut := runCLI(t, args, satCNF)
		if code != 10 {
			t.Fatalf("%s -verify SAT: code=%d err=%q", solver, code, errOut)
		}
		if solver != "portfolio" && !strings.Contains(out, "c verdict certified") {
			t.Fatalf("%s -verify SAT: missing certification line: %q", solver, out)
		}
		code, _, errOut = runCLI(t, args, unsatCNF)
		if code != 20 {
			t.Fatalf("%s -verify UNSAT: code=%d err=%q", solver, code, errOut)
		}
	}
}

func TestCLIVerifyAndProofCombined(t *testing.T) {
	path := filepath.Join(t.TempDir(), "combined.drat")
	code, out, errOut := runCLI(t,
		[]string{"-solver", "minisat", "-verify", "-proof", path}, unsatCNF)
	if code != 20 || !strings.Contains(out, "c verdict certified") {
		t.Fatalf("code=%d out=%q err=%q", code, out, errOut)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("proof file missing or empty: %v", err)
	}
}

func TestCLIReadsAndStats(t *testing.T) {
	code, out, errOut := runCLI(t,
		[]string{"-solver", "hyqsat", "-mode", "sim", "-reads", "3", "-stats"}, satCNF)
	if code != 10 {
		t.Fatalf("code=%d out=%q err=%q", code, out, errOut)
	}
	if !strings.Contains(out, "reads=") || !strings.Contains(out, "embedcache hits=") {
		t.Fatalf("stats output missing read/cache counters: %q", out)
	}
}

func TestCLIProfilesWritten(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	code, out, errOut := runCLI(t,
		[]string{"-solver", "hyqsat", "-mode", "sim", "-cpuprofile", cpu, "-memprofile", mem}, satCNF)
	if code != 10 {
		t.Fatalf("code=%d out=%q err=%q", code, out, errOut)
	}
	for _, p := range []string{cpu, mem} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Fatalf("profile %s missing or empty: %v", p, err)
		}
	}
	if code, _, _ := runCLI(t, []string{"-cpuprofile", "/nonexistent/dir/x.pprof"}, satCNF); code != 1 {
		t.Fatalf("unwritable cpuprofile path: code=%d, want 1", code)
	}
}

// mediumCNF renders a satisfiable 30-var random 3-SAT instance to DIMACS —
// big enough that the hybrid warmup actually exercises the QA loop, so a
// trace of it carries qa_call/strategy/phase events.
func mediumCNF(t *testing.T) string {
	t.Helper()
	inst := gen.SatisfiableRandom3SAT(30, 120, 9)
	var sb strings.Builder
	if err := cnf.WriteDIMACS(&sb, inst.Formula); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestCLITraceStreamReconstructsFigures(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	code, out, errOut := runCLI(t,
		[]string{"-solver", "hyqsat", "-mode", "sim", "-trace", path, "-stats"},
		mediumCNF(t))
	if code != 10 {
		t.Fatalf("code=%d out=%q err=%q", code, out, errOut)
	}
	if !strings.Contains(out, "phase breakdown") {
		t.Fatalf("-stats summary missing phase breakdown: %q", out)
	}
	tf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	events, err := obs.ReadJSONL(tf)
	if err != nil {
		t.Fatalf("trace unparseable: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace is empty")
	}
	bd := obs.PhaseBreakdown(events)
	for _, phase := range []string{"frontend", "backend", "cdcl", "qa_device"} {
		if bd[phase] <= 0 {
			t.Errorf("phase %q missing from trace breakdown %v", phase, bd)
		}
	}
	oc := obs.OutcomeCounts(events)
	if len(oc) == 0 {
		t.Errorf("no outcome classes in trace")
	}
}

func TestCLIFlightRecorderDumpsOnBudgetExhaustion(t *testing.T) {
	// One conflict is forced immediately on the xor-square but cannot finish
	// the refutation, so the budget expires with the verdict still open.
	code, out, errOut := runCLI(t,
		[]string{"-solver", "minisat", "-max-conflicts", "1", "-flight-recorder", "16"},
		unsatCNF)
	if code != 0 || !strings.Contains(out, "s UNKNOWN") {
		t.Fatalf("code=%d out=%q err=%q", code, out, errOut)
	}
	if !strings.Contains(errOut, "c flight recorder (unknown)") {
		t.Fatalf("stderr missing flight dump header: %q", errOut)
	}
	// The dump itself must be a parseable JSONL tail.
	_, rest, ok := strings.Cut(errOut, "events\n")
	if !ok {
		t.Fatalf("no dump after header: %q", errOut)
	}
	events, err := obs.ReadJSONL(strings.NewReader(rest))
	if err != nil || len(events) == 0 {
		t.Fatalf("flight dump unparseable: events=%d err=%v", len(events), err)
	}
}

func TestCLIFlightRecorderDumpsOnUnsat(t *testing.T) {
	_, _, errOut := runCLI(t,
		[]string{"-solver", "hyqsat", "-mode", "sim", "-flight-recorder", "8"}, unsatCNF)
	if !strings.Contains(errOut, "c flight recorder (unsat)") {
		t.Fatalf("stderr missing unsat flight dump: %q", errOut)
	}
}

func TestCLIMetricsAddrServesLiveEndpoints(t *testing.T) {
	// The CLI advertises the bound address on stderr before solving; a helper
	// goroutine watches for that line through a pipe and scrapes the endpoints
	// while the solve runs. The status provider is bound shortly after the
	// advertisement, so the status scrape retries briefly until it reports a
	// live solve.
	pr, pw := io.Pipe()
	type scrape struct {
		metrics string
		status  string
		err     error
	}
	got := make(chan scrape, 1)
	go func() {
		defer io.Copy(io.Discard, pr) // keep later stderr writes from blocking
		sc := bufio.NewScanner(pr)
		for sc.Scan() {
			addr, ok := strings.CutPrefix(sc.Text(), "c metrics listening on http://")
			if !ok {
				continue
			}
			// The solver registers its counters shortly after the server
			// starts listening, so both scrapes retry briefly: metrics until
			// the solver counters appear, status until the solve is live.
			var s scrape
			for i := 0; i < 100; i++ {
				s.metrics, s.err = httpGet(addr + "/metrics")
				if s.err != nil || strings.Contains(s.metrics, "hyqsat_qa_calls") {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			for i := 0; i < 100 && s.err == nil; i++ {
				s.status, s.err = httpGet(addr + "/solve/status")
				if strings.Contains(s.status, `"state":"solving"`) {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			got <- s
			return
		}
		got <- scrape{err: fmt.Errorf("no listening line on stderr")}
	}()

	var out bytes.Buffer
	code := run([]string{"-solver", "hyqsat", "-mode", "sim", "-metrics-addr", "127.0.0.1:0"},
		strings.NewReader(mediumCNF(t)), &out, pw)
	pw.Close()
	if code != 10 {
		t.Fatalf("code=%d out=%q", code, out.String())
	}
	s := <-got
	if s.err != nil {
		t.Fatalf("scrape: %v", s.err)
	}
	if !strings.Contains(s.metrics, "hyqsat_qa_calls") {
		t.Fatalf("/metrics missing solver counters: %q", s.metrics)
	}
	if !strings.Contains(s.status, `"state":"solving"`) {
		t.Fatalf("/solve/status not live: %q", s.status)
	}
}

func httpGet(url string) (string, error) {
	resp, err := http.Get("http://" + url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != 200 {
		return "", fmt.Errorf("status %d", resp.StatusCode)
	}
	return string(body), nil
}

func TestCLIFaultProfileOutageStillCertifies(t *testing.T) {
	// A 100% dead QA backend must not change the verdict: the hybrid degrades
	// to pure CDCL and -verify still certifies both answers.
	args := []string{"-solver", "hyqsat", "-mode", "sim", "-fault-profile", "outage", "-verify", "-stats"}
	code, out, errOut := runCLI(t, args, satCNF)
	if code != 10 || !strings.Contains(out, "c verdict certified") {
		t.Fatalf("outage SAT: code=%d out=%q err=%q", code, out, errOut)
	}
	code, out, errOut = runCLI(t, args, unsatCNF)
	if code != 20 || !strings.Contains(out, "c verdict certified") {
		t.Fatalf("outage UNSAT: code=%d out=%q err=%q", code, out, errOut)
	}
}

func TestCLIFaultProfileFlakySolves(t *testing.T) {
	code, out, errOut := runCLI(t,
		[]string{"-solver", "hyqsat", "-mode", "sim", "-seed", "4",
			"-fault-profile", "transient=0.4,latency=1ms", "-verify"},
		mediumCNF(t))
	if code != 10 || !strings.Contains(out, "c verdict certified") {
		t.Fatalf("flaky solve: code=%d out=%q err=%q", code, out, errOut)
	}
}

func TestCLIFaultProfileRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{"nonsense", "outage=0.7,transient=0.7", "latency=fast"} {
		code, _, errOut := runCLI(t,
			[]string{"-solver", "hyqsat", "-fault-profile", spec}, satCNF)
		if code != 1 || !strings.Contains(errOut, "fault profile") {
			t.Fatalf("spec %q: code=%d err=%q, want rejection", spec, code, errOut)
		}
	}
}

func TestCLITimeoutReportsUnknown(t *testing.T) {
	// A hard instance with an already-expired budget: the solver must stop at
	// its first context poll and report UNKNOWN (exit 0), not hang or error.
	inst := gen.Random3SAT(120, 510, 3) // near-threshold hard instance
	var sb strings.Builder
	if err := cnf.WriteDIMACS(&sb, inst.Formula); err != nil {
		t.Fatal(err)
	}
	for _, solver := range []string{"hyqsat", "minisat", "portfolio"} {
		args := []string{"-solver", solver, "-mode", "sim", "-timeout", "1ns", "-flight-recorder", "8"}
		code, out, errOut := runCLI(t, args, sb.String())
		if code != 0 || !strings.Contains(out, "s UNKNOWN") {
			t.Fatalf("%s with expired timeout: code=%d out=%q err=%q", solver, code, out, errOut)
		}
		if !strings.Contains(errOut, "c interrupted:") {
			t.Fatalf("%s: stderr missing interruption notice: %q", solver, errOut)
		}
	}
}

func TestCLISharingPortfolio(t *testing.T) {
	// -share wires the clause-sharing bus into the portfolio race; the
	// verdict must certify and the share counters must print with -stats.
	args := []string{"-solver", "portfolio", "-share", "-verify", "-stats", "-seed", "3"}
	code, out, errOut := runCLI(t, args, unsatCNF)
	if code != 20 || !strings.Contains(out, "c verdict certified") {
		t.Fatalf("shared portfolio UNSAT: code=%d out=%q err=%q", code, out, errOut)
	}
	if !strings.Contains(out, "c share exported=") {
		t.Fatalf("missing share stats line: %q", out)
	}
	if !strings.Contains(out, "c aggregate windows=") {
		t.Fatalf("missing aggregate stats line: %q", out)
	}
}

func TestCLICubeAndConquer(t *testing.T) {
	// -cube solves by splitting into assumption cubes. On UNSAT the stitched
	// proof written by -proof must replay through the DRAT checker against
	// the input formula.
	proofPath := filepath.Join(t.TempDir(), "stitched.drat")
	args := []string{"-cube", "-cube-depth", "2", "-workers", "2", "-share",
		"-verify", "-stats", "-proof", proofPath, "-seed", "5"}
	code, out, errOut := runCLI(t, args, unsatCNF)
	if code != 20 || !strings.Contains(out, "c verdict certified") {
		t.Fatalf("cube UNSAT: code=%d out=%q err=%q", code, out, errOut)
	}
	if !strings.Contains(out, "c cubes=") {
		t.Fatalf("missing cube stats line: %q", out)
	}
	data, err := os.ReadFile(proofPath)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := verify.ParseDRATString(string(data))
	if err != nil {
		t.Fatal(err)
	}
	f, err := cnf.ParseDIMACS(strings.NewReader(unsatCNF))
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckUnsatProof(f, proof); err != nil {
		t.Fatalf("written stitched proof rejected: %v", err)
	}

	code, out, errOut = runCLI(t,
		[]string{"-cube", "-cube-depth", "2", "-verify", "-seed", "5"}, satCNF)
	if code != 10 || !strings.Contains(out, "s SATISFIABLE") {
		t.Fatalf("cube SAT: code=%d out=%q err=%q", code, out, errOut)
	}
}

func TestCLICubeNontrivialInstance(t *testing.T) {
	// An instance the probe cannot finish, so the conquer phase actually
	// fans out over cubes (probe budget is fixed at 3000 conflicts; this
	// near-threshold instance needs far more).
	code, out, errOut := runCLI(t,
		[]string{"-cube", "-cube-depth", "3", "-workers", "2", "-share", "-verify", "-stats", "-seed", "7"},
		mediumCNF(t))
	if code != 10 && code != 20 {
		t.Fatalf("cube nontrivial: code=%d out=%q err=%q", code, out, errOut)
	}
	if code == 20 && !strings.Contains(out, "c verdict certified") {
		t.Fatalf("cube UNSAT not certified: %q", out)
	}
}
