package hyqsat

import (
	"context"
	"errors"
	"testing"
	"time"

	"hyqsat/internal/anneal"
	"hyqsat/internal/gen"
	"hyqsat/internal/obs"
	"hyqsat/internal/qpu"
	"hyqsat/internal/sat"
)

// chaosOptions is a hybrid configuration for fault testing: enough warm-up
// iterations that the QA path is genuinely exercised, self-certification on so
// every conclusive verdict is independently verified.
func chaosOptions(seed int64) Options {
	o := SimulatorOptions()
	o.Seed = seed
	o.SelfCertify = true
	o.WarmupIterations = 24
	return o
}

// chaosWrap decorates the solver's backend the way cmd/hyqsat does — fault
// injection under the Resilient layer — but with instant sleeps and a tiny
// cooldown so chaos runs take milliseconds. The second return fetches the
// Resilient handle once the solver has applied the wrap, for breaker-state
// assertions.
func chaosWrap(profile qpu.Profile, seed int64, trace obs.Tracer) (func(qpu.Backend) qpu.Backend, func() *qpu.Resilient) {
	var res *qpu.Resilient
	wrap := func(b qpu.Backend) qpu.Backend {
		fi := qpu.NewFaultInjector(b, profile, seed)
		fi.Trace = trace
		fi.Sleep = func(ctx context.Context, _ time.Duration) error { return ctx.Err() }
		res = qpu.NewResilient(fi, qpu.Config{
			MaxAttempts:      2,
			BreakerThreshold: 3,
			BreakerCooldown:  time.Nanosecond,
			Seed:             seed,
			Trace:            trace,
			Sleep:            func(ctx context.Context, _ time.Duration) error { return ctx.Err() },
		})
		return res
	}
	return wrap, func() *qpu.Resilient { return res }
}

// TestChaosMatrix runs the full hybrid solver under every fault profile on a
// small instance family and requires every answer to be not merely correct
// but certified: SAT models are model-checked and UNSAT verdicts RUP-verified
// by SelfCertify, which any silent corruption of the QA feedback path would
// break.
func TestChaosMatrix(t *testing.T) {
	instances := []*gen.Instance{
		gen.SatisfiableRandom3SAT(12, 40, 5),
		gen.SatisfiableRandom3SAT(16, 60, 6),
		gen.CmpAdd(2, 7), // UNSAT by construction
	}
	for name, profile := range qpu.Profiles() {
		profile := profile
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, inst := range instances {
				wrap, _ := chaosWrap(profile, 99, obs.Nop())
				o := chaosOptions(11)
				o.WrapBackend = wrap
				r := New(inst.Formula, o).Solve()
				if inst.Expected != sat.Unknown && r.Status != inst.Expected {
					t.Fatalf("%s under %q: status=%v, want %v", inst.Name, name, r.Status, inst.Expected)
				}
				if r.Status != sat.Unknown && !r.Certified {
					t.Fatalf("%s under %q: verdict not certified: %v", inst.Name, name, r.CertErr)
				}
			}
		})
	}
}

// TestOutageDegradesToCDCL checks the 100%-outage profile: every QA access
// fails, every warm-up iteration degrades to pure CDCL, and the solve still
// terminates with a certified answer. The degradation is visible in the
// counters and in the emitted DegradeEvents.
func TestOutageDegradesToCDCL(t *testing.T) {
	ring := obs.NewRing(256)
	wrap, _ := chaosWrap(qpu.Profiles()["outage"], 3, ring)
	inst := gen.SatisfiableRandom3SAT(14, 50, 8)
	o := chaosOptions(21)
	o.WrapBackend = wrap
	o.Trace = ring // DegradeEvents come from the solver's tracer, not the backend's
	r := New(inst.Formula, o).Solve()
	if r.Status != sat.Sat || !r.Certified {
		t.Fatalf("outage solve: status=%v certified=%v (%v)", r.Status, r.Certified, r.CertErr)
	}
	if r.Stats.QACalls != 0 {
		t.Fatalf("a dead backend delivered %d QA calls", r.Stats.QACalls)
	}
	if r.Stats.QADegraded == 0 {
		t.Fatal("no degraded iterations counted under total outage")
	}
	degrades := 0
	for _, te := range ring.Events() {
		if _, ok := te.E.(obs.DegradeEvent); ok {
			degrades++
		}
	}
	if int64(degrades) != r.Stats.QADegraded {
		t.Fatalf("degrade events (%d) disagree with the counter (%d)", degrades, r.Stats.QADegraded)
	}
}

// TestBreakerRecoveryDuringSolve drives the deterministic recovery shape: the
// first submissions fail (FailFirst), the breaker trips open, the cooldown
// elapses, a probe succeeds and QA guidance resumes — all within one solve,
// all visible in the breaker events and the final counters.
func TestBreakerRecoveryDuringSolve(t *testing.T) {
	ring := obs.NewRing(512)
	// MaxAttempts 2 retries inside each submission, so FailFirst 6 means 3
	// failed submissions — exactly the trip threshold.
	wrap, getRes := chaosWrap(qpu.Profile{FailFirst: 6}, 4, ring)
	inst := gen.SatisfiableRandom3SAT(16, 60, 9)
	o := chaosOptions(31)
	o.WrapBackend = wrap
	r := New(inst.Formula, o).Solve()
	if r.Status != sat.Sat || !r.Certified {
		t.Fatalf("recovery solve: status=%v certified=%v (%v)", r.Status, r.Certified, r.CertErr)
	}
	if r.Stats.QADegraded == 0 {
		t.Fatal("no iterations degraded while the backend was down")
	}
	if r.Stats.QACalls == 0 {
		t.Fatal("QA guidance never resumed after the fault window")
	}
	if got := getRes().State(); got != qpu.BreakerClosed {
		t.Fatalf("final breaker state %v, want closed", got)
	}
	var transitions []string
	for _, te := range ring.Events() {
		if be, ok := te.E.(obs.BreakerEvent); ok {
			transitions = append(transitions, be.From+">"+be.To)
		}
	}
	saw := func(want string) bool {
		for _, tr := range transitions {
			if tr == want {
				return true
			}
		}
		return false
	}
	if !saw("closed>open") || !saw("open>half-open") || !saw("half-open>closed") {
		t.Fatalf("breaker recovery cycle missing from transitions %v", transitions)
	}
}

// TestSolveContextCancelled checks external cancellation: the solve stops at
// the next safe point, reports Unknown with the cause in Result.Err, and the
// stats snapshot is still coherent.
func TestSolveContextCancelled(t *testing.T) {
	inst := gen.SatisfiableRandom3SAT(16, 60, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := New(inst.Formula, chaosOptions(41)).SolveContext(ctx)
	if r.Status != sat.Unknown {
		t.Fatalf("cancelled solve returned %v, want Unknown", r.Status)
	}
	if !errors.Is(r.Err, context.Canceled) {
		t.Fatalf("Result.Err=%v, want context.Canceled", r.Err)
	}
}

// TestChaosPreservesDeterminism checks fault handling does not leak into the
// solver's randomness: two solves with identical seeds and profiles agree on
// status and counters.
func TestChaosPreservesDeterminism(t *testing.T) {
	inst := gen.SatisfiableRandom3SAT(14, 50, 12)
	run := func() Result {
		wrap, _ := chaosWrap(qpu.Profiles()["flaky"], 77, obs.Nop())
		o := chaosOptions(51)
		o.WrapBackend = wrap
		return New(inst.Formula, o).Solve()
	}
	a, b := run(), run()
	if a.Status != b.Status || a.Stats.QACalls != b.Stats.QACalls ||
		a.Stats.QADegraded != b.Stats.QADegraded || a.Stats.SAT.Conflicts != b.Stats.SAT.Conflicts {
		t.Fatalf("identical chaos runs diverged:\n  a=%+v\n  b=%+v", a.Stats, b.Stats)
	}
}

// permanentReject is a backend whose every submission is refused by policy
// (quota budget spent) — the rejection satisfies qpu.Permanent.
type permanentReject struct{ calls int }

func (p *permanentReject) Submit(context.Context, *anneal.EmbeddedProblem, int) (anneal.ReadSet, error) {
	p.calls++
	return anneal.ReadSet{}, &qpu.RemoteError{
		Reason: "status", Status: 403, Detail: "device budget spent", IsPermanent: true,
	}
}
func (p *permanentReject) Name() string { return "reject" }

// TestPermanentRejectionDisablesQA: a permanent policy rejection (quota
// spent, auth revoked) must degrade the iteration AND switch the remaining
// warm-up off the QA path — one doomed submission, not one per interval —
// while the solve still terminates certified.
func TestPermanentRejectionDisablesQA(t *testing.T) {
	be := &permanentReject{}
	inst := gen.SatisfiableRandom3SAT(14, 50, 8)
	o := chaosOptions(41)
	o.WrapBackend = func(qpu.Backend) qpu.Backend { return be }
	r := New(inst.Formula, o).Solve()
	if r.Status != sat.Sat || !r.Certified {
		t.Fatalf("rejected solve: status=%v certified=%v (%v)", r.Status, r.Certified, r.CertErr)
	}
	if be.calls != 1 {
		t.Fatalf("backend submitted to %d times after a permanent rejection, want 1", be.calls)
	}
	if r.Stats.QADegraded != 1 {
		t.Fatalf("degraded iterations = %d, want exactly 1", r.Stats.QADegraded)
	}
}
