package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hyqsat/internal/obs"
)

// parallelFor runs fn(i) for every i in [0, n) across a worker pool bounded
// by workers (0 means runtime.NumCPU()). Each index is executed exactly once;
// callers write results into index-addressed slots, so the output is
// independent of scheduling. Only experiments that measure iteration counts
// use this — per-instance solver seeds make each job deterministic in
// isolation, so a report is identical at any worker count. Experiments that
// measure wall-clock time (Table II, Fig 1, Fig 11, Fig 12, Fig 13) stay
// serial: concurrent solvers would contend for cores and skew exactly the
// quantity being reported.
func parallelFor(workers, n int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// jobProgress wraps a parallelFor body with live progress accounting in reg:
// bench_<label>_jobs_total (gauge), bench_<label>_jobs_done (counter) and a
// per-job latency histogram. With a nil registry the body is returned
// unwrapped, so experiments pay nothing unless progress was asked for.
func jobProgress(reg *obs.Registry, label string, n int, fn func(i int)) func(i int) {
	if reg == nil {
		return fn
	}
	reg.Gauge("bench_" + label + "_jobs_total").Set(int64(n))
	done := reg.Counter("bench_" + label + "_jobs_done")
	// Jobs range from milliseconds (small random instances) to minutes
	// (pigeonhole grids), so buckets span 1ms..~4.5min geometrically.
	lat := reg.Histogram("bench_"+label+"_job_latency_ns", obs.ExpBuckets(1e6, 4, 10))
	return func(i int) {
		t0 := time.Now()
		fn(i)
		lat.Observe(float64(time.Since(t0).Nanoseconds()))
		done.Inc()
	}
}

// instanceJobs flattens a per-family instance loop into a single job list so
// parallelFor sees all independent (family, instance) pairs at once.
type instanceJob struct {
	fam  int // index into the family list
	inst int // instance index within the family
}

func flattenJobs(counts []int) []instanceJob {
	var jobs []instanceJob
	for f, n := range counts {
		for i := 0; i < n; i++ {
			jobs = append(jobs, instanceJob{f, i})
		}
	}
	return jobs
}
