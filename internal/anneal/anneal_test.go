package anneal

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"hyqsat/internal/chimera"
	"hyqsat/internal/cnf"
	"hyqsat/internal/embed"
	"hyqsat/internal/qubo"
)

func TestTimingModel(t *testing.T) {
	tm := DWave2000QTiming()
	if got := tm.AccessTime(0); got != 0 {
		t.Fatalf("AccessTime(0) = %v", got)
	}
	// 60 samples: 60·130µs + 59·20µs + programming.
	want := tm.ProgrammingTime + 60*130*time.Microsecond + 59*20*time.Microsecond
	if got := tm.AccessTime(60); got != want {
		t.Fatalf("AccessTime(60) = %v, want %v", got, want)
	}
	if tm.SampleTime() != tm.AccessTime(1) {
		t.Fatal("SampleTime != AccessTime(1)")
	}
}

func TestSampleLogicalFindsGroundStateOfTinyProblems(t *testing.T) {
	// Ferromagnetic pair with a field: ground state both up.
	is := &qubo.Ising{
		H: map[int]float64{0: -1, 1: -1},
		J: map[qubo.Edge]float64{{U: 0, V: 1}: -1},
	}
	s := NewSampler(LongSchedule(), NoNoise, 1)
	hits := 0
	for trial := 0; trial < 20; trial++ {
		v := s.SampleLogical(is, 2)
		if v[0] && v[1] {
			hits++
		}
	}
	if hits < 18 {
		t.Fatalf("ground state found %d/20 times", hits)
	}
}

func TestSampleLogicalAntiferromagnet(t *testing.T) {
	// J>0 favours opposite spins.
	is := &qubo.Ising{
		H: map[int]float64{},
		J: map[qubo.Edge]float64{{U: 0, V: 1}: 1},
	}
	s := NewSampler(LongSchedule(), NoNoise, 2)
	for trial := 0; trial < 20; trial++ {
		v := s.SampleLogical(is, 2)
		if v[0] == v[1] {
			t.Fatalf("trial %d: antiferromagnet aligned", trial)
		}
	}
}

// encodeAndEmbed builds the QUBO encoding of the clauses and fast-embeds it.
func encodeAndEmbed(t *testing.T, clauses []cnf.Clause, g *chimera.Graph) (*qubo.Encoding, *embed.FastResult) {
	t.Helper()
	enc, err := qubo.Encode(clauses)
	if err != nil {
		t.Fatal(err)
	}
	res := embed.Fast(enc, g)
	if res.EmbeddedClauses != len(clauses) {
		t.Fatalf("embedded %d/%d clauses", res.EmbeddedClauses, len(clauses))
	}
	return enc, res
}

func TestEmbedIsingStructure(t *testing.T) {
	g := chimera.New(4, 4, 4)
	enc, res := encodeAndEmbed(t, []cnf.Clause{cnf.NewClause(1, 2, 3)}, g)
	norm, _ := enc.Poly.Normalized()
	is := norm.ToIsing()
	ep := EmbedIsing(is, res.Embedding, g, ChainStrengthFor(is))
	if ep.NumActiveQubits() != res.Embedding.QubitsUsed() {
		t.Fatalf("active qubits %d vs embedding %d", ep.NumActiveQubits(), res.Embedding.QubitsUsed())
	}
	// Field conservation: Σ per-qubit fields of a chain == logical h.
	for node, chainIx := range ep.chains {
		sum := 0.0
		for _, i := range chainIx {
			sum += ep.H[i]
		}
		if want := is.H[node]; math.Abs(sum-want) > 1e-9 {
			t.Fatalf("node %d: chain field sum %v, logical %v", node, sum, want)
		}
	}
}

func TestEmbedIsingPanicsOnMissingCoupler(t *testing.T) {
	g := chimera.New(2, 2, 2)
	is := &qubo.Ising{H: map[int]float64{}, J: map[qubo.Edge]float64{{U: 0, V: 1}: 1}}
	emb := embed.NewEmbedding()
	emb.Chains[0] = []int{g.Qubit(0, 0, true, 0)}
	emb.Chains[1] = []int{g.Qubit(1, 1, true, 0)} // no coupler between them
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unrealised coupling")
		}
	}()
	EmbedIsing(is, emb, g, 1)
}

func TestHardwareSampleSolvesSatisfiableClauses(t *testing.T) {
	// A small satisfiable clause set: the noise-free sampler with a long
	// schedule should reach unit energy 0 in most samples.
	rng := rand.New(rand.NewSource(3))
	g := chimera.DWave2000Q()
	f := cnf.New(12)
	for i := 0; i < 18; i++ {
		perm := rng.Perm(12)[:3]
		c := make(cnf.Clause, 3)
		for j, v := range perm {
			c[j] = cnf.MkLit(cnf.Var(v), rng.Intn(2) == 0)
		}
		f.AddClause(c)
	}
	// Force satisfiability by flipping literals towards the all-true model.
	for i, c := range f.Clauses {
		sat := false
		for _, l := range c {
			if !l.IsNeg() {
				sat = true
			}
		}
		if !sat {
			f.Clauses[i][0] = f.Clauses[i][0].Not()
		}
	}
	enc, res := encodeAndEmbed(t, f.Clauses, g)
	enc.AdjustCoefficients()
	norm, _ := enc.Poly.Normalized()
	is := norm.ToIsing()
	ep := EmbedIsing(is, res.Embedding, g, ChainStrengthFor(is))

	s := NewSampler(LongSchedule(), NoNoise, 7)
	zero := 0
	for trial := 0; trial < 10; trial++ {
		sample := s.SampleOnce(ep)
		x := make([]bool, enc.NumNodes())
		for node, v := range sample.NodeValues {
			x[node] = v
		}
		if enc.UnitEnergy(x) < 0.5 {
			zero++
		}
	}
	if zero < 5 {
		t.Fatalf("reached zero unit energy only %d/10 times", zero)
	}
}

func TestNoiseDegradesEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := chimera.DWave2000Q()
	var clauses []cnf.Clause
	for i := 0; i < 15; i++ {
		perm := rng.Perm(10)[:3]
		c := make(cnf.Clause, 3)
		for j, v := range perm {
			c[j] = cnf.MkLit(cnf.Var(v), false) // all-positive: trivially satisfiable
		}
		clauses = append(clauses, c)
	}
	enc, res := encodeAndEmbed(t, clauses, g)
	norm, _ := enc.Poly.Normalized()
	is := norm.ToIsing()
	ep := EmbedIsing(is, res.Embedding, g, ChainStrengthFor(is))

	meanEnergy := func(noise Noise, sched Schedule, seed int64) float64 {
		s := NewSampler(sched, noise, seed)
		total := 0.0
		for trial := 0; trial < 20; trial++ {
			sample := s.SampleOnce(ep)
			x := make([]bool, enc.NumNodes())
			for node, v := range sample.NodeValues {
				x[node] = v
			}
			total += enc.UnitEnergy(x)
		}
		return total / 20
	}
	clean := meanEnergy(NoNoise, LongSchedule(), 11)
	noisy := meanEnergy(Noise{CoefficientSigma: 0.2, ReadoutFlipProb: 0.1}, DefaultSchedule(), 11)
	if noisy <= clean {
		t.Fatalf("noise did not degrade energy: clean %v noisy %v", clean, noisy)
	}
}

func TestBrokenChainsReported(t *testing.T) {
	// Huge readout noise must break some chains of a multi-qubit-chain
	// embedding.
	rng := rand.New(rand.NewSource(9))
	g := chimera.DWave2000Q()
	var clauses []cnf.Clause
	for i := 0; i < 12; i++ {
		perm := rng.Perm(9)[:3]
		c := make(cnf.Clause, 3)
		for j, v := range perm {
			c[j] = cnf.MkLit(cnf.Var(v), rng.Intn(2) == 0)
		}
		clauses = append(clauses, c)
	}
	enc, res := encodeAndEmbed(t, clauses, g)
	if res.Embedding.MaxChainLength() < 2 {
		t.Skip("no multi-qubit chains to break")
	}
	norm, _ := enc.Poly.Normalized()
	is := norm.ToIsing()
	ep := EmbedIsing(is, res.Embedding, g, ChainStrengthFor(is))
	s := NewSampler(DefaultSchedule(), Noise{ReadoutFlipProb: 0.4}, 13)
	broken := 0
	for trial := 0; trial < 10; trial++ {
		broken += s.SampleOnce(ep).BrokenChains
	}
	if broken == 0 {
		t.Fatal("40% readout noise broke no chains")
	}
}

func TestSampleOnceDeterministicForSeed(t *testing.T) {
	g := chimera.New(4, 4, 4)
	enc, res := encodeAndEmbed(t, []cnf.Clause{cnf.NewClause(1, 2, 3), cnf.NewClause(-1, 2, 4)}, g)
	norm, _ := enc.Poly.Normalized()
	is := norm.ToIsing()
	ep := EmbedIsing(is, res.Embedding, g, ChainStrengthFor(is))
	a := NewSampler(DefaultSchedule(), DWave2000QNoise, 99).SampleOnce(ep)
	b := NewSampler(DefaultSchedule(), DWave2000QNoise, 99).SampleOnce(ep)
	if a.HardwareEnergy != b.HardwareEnergy || a.BrokenChains != b.BrokenChains {
		t.Fatal("same seed produced different samples")
	}
	for k, v := range a.NodeValues {
		if b.NodeValues[k] != v {
			t.Fatalf("same seed, different node %d", k)
		}
	}
}

func TestChainStrengthFor(t *testing.T) {
	is := &qubo.Ising{H: map[int]float64{0: 0.5}, J: map[qubo.Edge]float64{{U: 0, V: 1}: -2}}
	if got := ChainStrengthFor(is); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("chain strength %v, want 1.25·2 = 2.5", got)
	}
	if ChainStrengthFor(&qubo.Ising{H: map[int]float64{}, J: map[qubo.Edge]float64{}}) != 1 {
		t.Fatal("zero model should give strength 1")
	}
}
