package cnf

import "testing"

// FuzzParseDIMACS asserts the two parser contracts that matter to every
// downstream consumer: malformed input produces an error (never a panic or a
// silently mis-parsed formula), and any accepted input round-trips through
// WriteDIMACS/ParseDIMACS unchanged.
func FuzzParseDIMACS(f *testing.F) {
	f.Add("p cnf 3 2\n1 2 -3 0\n-1 3 0\n")
	f.Add("c comment\np cnf 2 1\n1 2\nc mid-clause\n0\n")
	f.Add("p cnf 2 1\n1 2 0\n%\n0\n")
	f.Add("p cnf 0 0\n")
	f.Add("p cnf 1 2\n1 0\n0\n")
	f.Add("1 -2 0 2 0")
	f.Add("p cnf 2 2\n1 2 0\n")
	f.Add("-0 0")
	f.Fuzz(func(t *testing.T, data string) {
		g, err := ParseDIMACSString(data)
		if err != nil {
			return
		}
		if g == nil {
			t.Fatal("nil formula without error")
		}
		h, err := ParseDIMACSString(DIMACSString(g))
		if err != nil {
			t.Fatalf("accepted input failed to re-parse: %v", err)
		}
		if h.NumVars != g.NumVars || h.NumClauses() != g.NumClauses() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				g.NumVars, g.NumClauses(), h.NumVars, h.NumClauses())
		}
		for i := range g.Clauses {
			if len(g.Clauses[i]) != len(h.Clauses[i]) {
				t.Fatalf("clause %d length changed", i)
			}
			for j := range g.Clauses[i] {
				if g.Clauses[i][j] != h.Clauses[i][j] {
					t.Fatalf("clause %d literal %d changed", i, j)
				}
			}
		}
	})
}
