package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"hyqsat/internal/cnf"
	"hyqsat/internal/gen"
	"hyqsat/internal/obs"
	"hyqsat/internal/serve"
)

// startDaemon runs the daemon in-process on a free port and returns its base
// URL plus a channel carrying the exit code.
func startDaemon(t *testing.T, extra ...string) (string, *bytes.Buffer, *bytes.Buffer, chan int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-drain-grace", "500ms"}, extra...)
	go func() { exit <- run(args, &stdout, &stderr, ready) }()
	select {
	case base := <-ready:
		return base, &stdout, &stderr, exit
	case code := <-exit:
		t.Fatalf("daemon exited immediately with %d\nstderr: %s", code, stderr.String())
		return "", nil, nil, nil
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
		return "", nil, nil, nil
	}
}

// TestDaemonSolvesAndDrainsOnSIGTERM is the end-to-end contract: a real
// daemon accepts a job over HTTP, returns a certified verdict, and a SIGTERM
// drains it cleanly — admission off, trace flushed, exit 0.
func TestDaemonSolvesAndDrainsOnSIGTERM(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	base, stdout, stderr, exit := startDaemon(t, "-trace", trace)

	inst := gen.SatisfiableRandom3SAT(12, 40, 5)
	body, _ := json.Marshal(serve.SubmitRequest{CNF: cnf.DIMACSString(inst.Formula), Seed: 3})
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, blob)
	}
	var view serve.JobView
	if err := json.Unmarshal(blob, &view); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(base + "/v1/jobs/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		_ = json.NewDecoder(r.Body).Decode(&view)
		r.Body.Close()
		if view.State == serve.StateDone {
			break
		}
		if view.State == serve.StateFailed || !time.Now().Before(deadline) {
			t.Fatalf("job never finished: %+v", view)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if view.Verdict != "sat" || !view.Certified {
		t.Fatalf("verdict %q certified=%v, want certified sat", view.Verdict, view.Certified)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d\nstderr: %s", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never exited after SIGTERM\nstderr: %s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "drained cleanly") {
		t.Fatalf("stdout: %q", stdout.String())
	}
	if !strings.Contains(stderr.String(), "draining") {
		t.Fatalf("stderr: %q", stderr.String())
	}
	// The port must actually be released.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("API still serving after drain")
	}
	// The flushed trace must carry the job's lifecycle.
	f, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatalf("trace not parseable: %v", err)
	}
	var accepted, done bool
	for _, te := range events {
		if je, ok := te.E.(obs.JobEvent); ok {
			accepted = accepted || je.State == "accepted"
			done = done || je.State == serve.StateDone
		}
	}
	if !accepted || !done {
		t.Fatalf("trace missing job lifecycle (accepted=%v done=%v, %d events)",
			accepted, done, len(events))
	}
}
