// Command tracereport analyzes a recorded solve trace offline: the JSONL
// stream written by `hyqsat -trace` (or a flight-recorder dump from
// /trace/flight) is parsed back into events, demultiplexed by solve id and
// event source, and rendered as per-solve / per-source reports.
//
// Usage:
//
//	tracereport [-json] [-calls] [-compare other.jsonl] [trace.jsonl]
//
// With no file the trace is read from stdin. Each report contains:
//
//   - the phase breakdown (frontend / qa-device / backend / cdcl, the paper's
//     Fig 11 view) per solve and per source,
//   - the Fig 9 outcome classification counts,
//   - the QA-quality summary: chain-break rate bucketed by chain length,
//     energy-gap distribution, per-strategy hits and conflict segments, and
//     the payoff estimate (conflicts avoided per device-µs),
//   - portfolio window/winner, clause-sharing and cube statistics when the
//     trace recorded a race or a cube-and-conquer run, and
//   - with -calls, the per-access QA call table.
//
// -json emits the same report as a JSON document; -compare loads a second
// trace and prints both reports' aggregates side by side with deltas.
// Exit status: 0 on success, 1 on unreadable input, 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"hyqsat/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with its environment injected, so the CLI is testable end to
// end: flag parsing, trace ingestion, report rendering, and exit codes.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracereport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of text")
	calls := fs.Bool("calls", false, "include the per-access QA call table")
	comparePath := fs.String("compare", "", "second trace to diff against the first")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 1 {
		fmt.Fprintln(stderr, "tracereport: at most one trace file")
		return 2
	}

	load := func(path string, fallback io.Reader) (*Report, error) {
		r := fallback
		name := "<stdin>"
		if path != "" {
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			r, name = f, path
		}
		return buildReport(name, r, *calls)
	}

	var primaryPath string
	if fs.NArg() == 1 {
		primaryPath = fs.Arg(0)
	}
	rep, err := load(primaryPath, stdin)
	if err != nil {
		fmt.Fprintln(stderr, "tracereport:", err)
		return 1
	}

	if *comparePath != "" {
		other, err := load(*comparePath, nil)
		if err != nil {
			fmt.Fprintln(stderr, "tracereport:", err)
			return 1
		}
		if *jsonOut {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(map[string]*Report{"a": rep, "b": other}); err != nil {
				fmt.Fprintln(stderr, "tracereport:", err)
				return 1
			}
			return 0
		}
		writeCompare(stdout, rep, other)
		return 0
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "tracereport:", err)
			return 1
		}
		return 0
	}
	writeReport(stdout, rep)
	return 0
}

// Report is the full analysis of one trace.
type Report struct {
	File   string          `json:"file"`
	Header obs.HeaderEvent `json:"header"`
	Events int             `json:"events"`
	// Total aggregates the whole trace regardless of attribution.
	Total  Aggregate     `json:"total"`
	Solves []SolveReport `json:"solves,omitempty"`
}

// Aggregate is the analysis of one event subset: phase breakdown (ns per
// phase), outcome classification counts, and the QA-quality summary.
type Aggregate struct {
	Events   int                `json:"events"`
	Phases   map[string]int64   `json:"phases_ns,omitempty"`
	Outcomes map[string]int     `json:"outcomes,omitempty"`
	Quality  obs.QualitySummary `json:"quality"`
}

// SolveReport covers every event attributed to one solve id.
type SolveReport struct {
	Solve     string          `json:"solve"`
	Aggregate Aggregate       `json:"aggregate"`
	Portfolio *PortfolioStats `json:"portfolio,omitempty"`
	Share     *obs.ShareEvent `json:"share,omitempty"`
	Cubes     *CubeStats      `json:"cubes,omitempty"`
	Sources   []SourceReport  `json:"sources,omitempty"`
}

// SourceReport covers one emitter's stream inside a solve.
type SourceReport struct {
	Name      string      `json:"name"`
	Aggregate Aggregate   `json:"aggregate"`
	QPU       *QPUStats   `json:"qpu,omitempty"`
	QACalls   []QACallRow `json:"qa_calls,omitempty"`
}

// PortfolioStats summarises a race recorded in the trace.
type PortfolioStats struct {
	Windows map[string]int `json:"windows"` // entrant → budget windows started
	Winner  string         `json:"winner,omitempty"`
}

// CubeStats summarises a cube-and-conquer run recorded in the trace.
type CubeStats struct {
	Cubes     int            `json:"cubes"`
	ByStatus  map[string]int `json:"by_status"`
	Conflicts int64          `json:"conflicts"`
	Workers   int            `json:"workers"`
}

// QPUStats counts the retry layer's events within one source.
type QPUStats struct {
	Retries  int `json:"retries"`
	Faults   int `json:"faults"`
	Breakers int `json:"breaker_transitions"`
}

// QACallRow is one line of the -calls table.
type QACallRow struct {
	TSUs     int64   `json:"ts_us"`
	Call     int64   `json:"call"`
	Reads    int     `json:"reads"`
	Best     float64 `json:"best_energy"`
	MeanGap  float64 `json:"mean_gap"`
	Broken   float64 `json:"broken_frac"`
	Chains   int     `json:"chains"`
	MaxChain int     `json:"max_chain_len,omitempty"`
	DeviceUs float64 `json:"device_us"`
}

// buildReport ingests one trace and computes the full analysis.
func buildReport(name string, r io.Reader, withCalls bool) (*Report, error) {
	if r == nil {
		return nil, fmt.Errorf("no input")
	}
	header, events, err := obs.ReadTrace(r)
	if err != nil {
		return nil, err
	}
	rep := &Report{File: name, Header: header, Events: len(events), Total: aggregate(events)}

	bySolve := map[string][]obs.Stamped{}
	var solveOrder []string
	for _, ev := range events {
		if _, seen := bySolve[ev.Solve]; !seen {
			solveOrder = append(solveOrder, ev.Solve)
		}
		bySolve[ev.Solve] = append(bySolve[ev.Solve], ev)
	}
	for _, id := range solveOrder {
		rep.Solves = append(rep.Solves, solveReport(id, bySolve[id], withCalls))
	}
	return rep, nil
}

func solveReport(id string, events []obs.Stamped, withCalls bool) SolveReport {
	sr := SolveReport{Solve: id, Aggregate: aggregate(events)}

	windows := map[string]int{}
	var winner string
	cubeStatus := map[string]int{}
	cubeSeen := map[int]bool{}
	workers := map[int]bool{}
	var cubeConflicts int64
	for _, ev := range events {
		switch e := ev.E.(type) {
		case obs.PortfolioEvent:
			switch e.Status {
			case "window":
				windows[e.Entrant]++
			case "winner":
				winner = e.Entrant
			}
		case obs.ShareEvent:
			share := e
			sr.Share = &share
		case obs.CubeEvent:
			cubeStatus[e.Status]++
			cubeSeen[e.Cube] = true
			workers[e.Worker] = true
			cubeConflicts += e.Conflicts
		}
	}
	if len(windows) > 0 || winner != "" {
		sr.Portfolio = &PortfolioStats{Windows: windows, Winner: winner}
	}
	if len(cubeSeen) > 0 {
		sr.Cubes = &CubeStats{Cubes: len(cubeSeen), ByStatus: cubeStatus,
			Conflicts: cubeConflicts, Workers: len(workers)}
	}

	bySrc := map[string][]obs.Stamped{}
	var srcOrder []string
	for _, ev := range events {
		if _, seen := bySrc[ev.Src]; !seen {
			srcOrder = append(srcOrder, ev.Src)
		}
		bySrc[ev.Src] = append(bySrc[ev.Src], ev)
	}
	sort.Strings(srcOrder)
	for _, src := range srcOrder {
		sub := bySrc[src]
		rep := SourceReport{Name: src, Aggregate: aggregate(sub)}
		var qpu QPUStats
		for _, ev := range sub {
			switch ev.E.(type) {
			case obs.QPURetryEvent:
				qpu.Retries++
			case obs.QPUFaultEvent:
				qpu.Faults++
			case obs.BreakerEvent:
				qpu.Breakers++
			}
		}
		if qpu != (QPUStats{}) {
			rep.QPU = &qpu
		}
		if withCalls {
			rep.QACalls = callTable(sub)
		}
		sr.Sources = append(sr.Sources, rep)
	}
	return sr
}

func aggregate(events []obs.Stamped) Aggregate {
	agg := Aggregate{Events: len(events), Quality: obs.ComputeQuality(events)}
	phases := obs.PhaseBreakdown(events)
	if len(phases) > 0 {
		agg.Phases = make(map[string]int64, len(phases))
		for name, d := range phases {
			agg.Phases[name] = d.Nanoseconds()
		}
	}
	if oc := obs.OutcomeCounts(events); len(oc) > 0 {
		agg.Outcomes = oc
	}
	return agg
}

func callTable(events []obs.Stamped) []QACallRow {
	var rows []QACallRow
	for _, ev := range events {
		e, ok := ev.E.(obs.QACallEvent)
		if !ok {
			continue
		}
		row := QACallRow{
			TSUs:     ev.TS / 1000,
			Call:     e.Call,
			Reads:    e.Reads,
			Chains:   e.Chains,
			MaxChain: e.MaxChainLen,
			DeviceUs: float64(e.DeviceNs) / 1000,
		}
		if e.Best >= 0 && e.Best < len(e.Energies) {
			row.Best = e.Energies[e.Best]
			var gaps float64
			for _, en := range e.Energies {
				gaps += en - row.Best
			}
			if len(e.Energies) > 0 {
				row.MeanGap = gaps / float64(len(e.Energies))
			}
		}
		if total := e.Chains * len(e.BrokenChains); total > 0 {
			var broken int
			for _, b := range e.BrokenChains {
				broken += b
			}
			row.Broken = float64(broken) / float64(total)
		}
		rows = append(rows, row)
	}
	return rows
}

// writeReport renders the human-facing report.
func writeReport(w io.Writer, rep *Report) {
	fmt.Fprintf(w, "trace %s: %d events", rep.File, rep.Events)
	if rep.Header.Schema > 0 {
		fmt.Fprintf(w, ", schema %d, started %s", rep.Header.Schema,
			time.UnixMicro(rep.Header.StartUs).UTC().Format(time.RFC3339))
	} else {
		fmt.Fprint(w, ", no header (legacy trace)")
	}
	fmt.Fprintln(w)
	if len(rep.Solves) > 1 || rep.Total.Events != solveEvents(rep) {
		writeAggregate(w, "total", rep.Total, "")
	}
	for _, sr := range rep.Solves {
		id := sr.Solve
		if id == "" {
			id = "(unattributed)"
		}
		fmt.Fprintf(w, "solve %s\n", id)
		writeAggregate(w, "", sr.Aggregate, "  ")
		if sr.Portfolio != nil {
			fmt.Fprintf(w, "  portfolio:")
			for _, name := range sortedKeys(sr.Portfolio.Windows) {
				fmt.Fprintf(w, " %s=%dw", name, sr.Portfolio.Windows[name])
			}
			if sr.Portfolio.Winner != "" {
				fmt.Fprintf(w, " winner=%s", sr.Portfolio.Winner)
			}
			fmt.Fprintln(w)
		}
		if sr.Share != nil {
			fmt.Fprintf(w, "  share: exported=%d imported=%d filtered=%d duplicates=%d dropped=%d\n",
				sr.Share.Exported, sr.Share.Imported, sr.Share.Filtered,
				sr.Share.Duplicates, sr.Share.Dropped)
		}
		if sr.Cubes != nil {
			fmt.Fprintf(w, "  cubes: %d over %d workers, conflicts=%d", sr.Cubes.Cubes,
				sr.Cubes.Workers, sr.Cubes.Conflicts)
			for _, st := range sortedKeys(sr.Cubes.ByStatus) {
				fmt.Fprintf(w, " %s=%d", st, sr.Cubes.ByStatus[st])
			}
			fmt.Fprintln(w)
		}
		for _, src := range sr.Sources {
			name := src.Name
			if name == "" {
				name = "(unattributed)"
			}
			fmt.Fprintf(w, "  source %s (%d events)\n", name, src.Aggregate.Events)
			writeAggregate(w, "", src.Aggregate, "    ")
			if src.QPU != nil {
				fmt.Fprintf(w, "    qpu: retries=%d faults=%d breaker=%d\n",
					src.QPU.Retries, src.QPU.Faults, src.QPU.Breakers)
			}
			if len(src.QACalls) > 0 {
				fmt.Fprintf(w, "    %8s %6s %6s %12s %9s %7s %7s %9s\n",
					"ts(us)", "call", "reads", "best", "meangap", "broken", "chains", "dev(us)")
				for _, row := range src.QACalls {
					fmt.Fprintf(w, "    %8d %6d %6d %12.4f %9.4f %6.1f%% %7d %9.1f\n",
						row.TSUs, row.Call, row.Reads, row.Best, row.MeanGap,
						100*row.Broken, row.Chains, row.DeviceUs)
				}
			}
		}
	}
}

func solveEvents(rep *Report) int {
	n := 0
	for _, sr := range rep.Solves {
		n += sr.Aggregate.Events
	}
	return n
}

func writeAggregate(w io.Writer, title string, agg Aggregate, indent string) {
	if title != "" {
		fmt.Fprintf(w, "%s%s (%d events)\n", indent, title, agg.Events)
		indent += "  "
	}
	if len(agg.Phases) > 0 {
		var total int64
		for _, ns := range agg.Phases {
			total += ns
		}
		fmt.Fprintf(w, "%sphases (total %v):\n", indent, time.Duration(total))
		for _, name := range sortedKeys(agg.Phases) {
			ns := agg.Phases[name]
			share := 0.0
			if total > 0 {
				share = 100 * float64(ns) / float64(total)
			}
			fmt.Fprintf(w, "%s  %-10s %12v %5.1f%%\n", indent, name, time.Duration(ns), share)
		}
	}
	if len(agg.Outcomes) > 0 {
		fmt.Fprintf(w, "%soutcomes:", indent)
		for _, class := range sortedKeys(agg.Outcomes) {
			fmt.Fprintf(w, " %s=%d", class, agg.Outcomes[class])
		}
		fmt.Fprintln(w)
	}
	writeQuality(w, agg.Quality, indent)
}

func writeQuality(w io.Writer, q obs.QualitySummary, indent string) {
	if q.QACalls == 0 && q.Conflicts == 0 && q.Degrades == 0 {
		return
	}
	fmt.Fprintf(w, "%squality: qacalls=%d reads=%d deviceus=%.1f chainbreakrate=%.4f conflicts=%d degrades=%d\n",
		indent, q.QACalls, q.Reads, q.DeviceUs, q.ChainBreakRate, q.Conflicts, q.Degrades)
	if len(q.ChainBreakByLen) > 0 {
		fmt.Fprintf(w, "%s  chain-break by max len:", indent)
		for _, b := range q.ChainBreakByLen {
			label := fmt.Sprintf("≤%d", b.MaxLen)
			if b.MaxLen == 0 {
				label = ">16"
			}
			fmt.Fprintf(w, " %s:%.4f(n=%d)", label, b.Rate, b.Reads)
		}
		fmt.Fprintln(w)
	}
	if q.EnergyGap.Count > 0 {
		fmt.Fprintf(w, "%s  energy gap: n=%d mean=%.4f min=%.4f max=%.4f\n",
			indent, q.EnergyGap.Count, q.EnergyGap.Mean, q.EnergyGap.Min, q.EnergyGap.Max)
	}
	if len(q.Strategies) > 0 {
		fmt.Fprintf(w, "%s  strategies:", indent)
		for _, s := range q.Strategies {
			fmt.Fprintf(w, " s%d[hits=%d seg=%d mean=%.1f]", s.Strategy, s.Hits, s.Segments, s.MeanConflicts)
		}
		fmt.Fprintln(w)
	}
	if q.PayoffPerDeviceUs != 0 || q.BaselineConflictsPerSegment != 0 {
		fmt.Fprintf(w, "%s  payoff: baseline=%.1f conf/seg avoided=%.1f payoff=%.4f conf/device-us\n",
			indent, q.BaselineConflictsPerSegment, q.AvoidedConflicts, q.PayoffPerDeviceUs)
	}
}

// writeCompare renders the two traces' aggregates side by side.
func writeCompare(w io.Writer, a, b *Report) {
	fmt.Fprintf(w, "compare %s (a) vs %s (b)\n", a.File, b.File)
	fmt.Fprintf(w, "  events: a=%d b=%d\n", a.Events, b.Events)

	names := map[string]bool{}
	for name := range a.Total.Phases {
		names[name] = true
	}
	for name := range b.Total.Phases {
		names[name] = true
	}
	if len(names) > 0 {
		fmt.Fprintf(w, "  %-12s %14s %14s %9s\n", "phase", "a", "b", "delta")
		for _, name := range sortedKeys(names) {
			pa := time.Duration(a.Total.Phases[name])
			pb := time.Duration(b.Total.Phases[name])
			fmt.Fprintf(w, "  %-12s %14v %14v %9s\n", name, pa, pb, deltaPct(float64(pa), float64(pb)))
		}
	}

	qa, qb := a.Total.Quality, b.Total.Quality
	row := func(name string, va, vb float64) {
		fmt.Fprintf(w, "  %-18s %12.4f %12.4f %9s\n", name, va, vb, deltaPct(va, vb))
	}
	fmt.Fprintf(w, "  %-18s %12s %12s %9s\n", "quality", "a", "b", "delta")
	row("qa_calls", float64(qa.QACalls), float64(qb.QACalls))
	row("chain_break_rate", qa.ChainBreakRate, qb.ChainBreakRate)
	row("energy_gap_mean", qa.EnergyGap.Mean, qb.EnergyGap.Mean)
	row("conflicts", float64(qa.Conflicts), float64(qb.Conflicts))
	row("degrades", float64(qa.Degrades), float64(qb.Degrades))
	row("payoff_per_us", qa.PayoffPerDeviceUs, qb.PayoffPerDeviceUs)
}

func deltaPct(a, b float64) string {
	if a == 0 {
		if b == 0 {
			return "0%"
		}
		return "new"
	}
	return fmt.Sprintf("%+.1f%%", 100*(b-a)/a)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
