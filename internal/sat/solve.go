package sat

import (
	"sort"

	"hyqsat/internal/cnf"
	"hyqsat/internal/obs"
)

// StepStatus is the outcome of a single solver iteration.
type StepStatus int

// Step outcomes.
const (
	StepContinue StepStatus = iota // search continues
	StepSat                        // a model was found
	StepUnsat                      // unsatisfiability was proven
	StepBudget                     // a conflict/iteration budget was exhausted
)

// Step runs one iteration of the CDCL search: propagation, conflict
// resolution (with learning, backjumping, restarts and DB reduction), and —
// when no conflict arises — one decision. This is the unit the paper counts
// ("one iteration includes three steps: decision, propagation, conflict
// resolving") and the granularity at which the HyQSAT hybrid loop interleaves
// quantum guidance.
func (s *Solver) Step() StepStatus {
	if s.status == Unsat {
		return StepUnsat
	}
	if s.status == Sat {
		return StepSat
	}
	if s.opts.MaxConflicts > 0 && s.stats.Conflicts >= s.opts.MaxConflicts {
		return StepBudget
	}
	if s.opts.MaxIterations > 0 && s.stats.Iterations >= s.opts.MaxIterations {
		return StepBudget
	}
	if s.interrupted.Load() {
		return StepBudget
	}
	s.stats.Iterations++
	if s.metrics.Iterations != nil {
		s.metrics.Iterations.Set(s.stats.Iterations)
	}

	for {
		conflict := s.propagate()
		if conflict == crefUndef {
			break
		}
		if !s.handleConflict(conflict) {
			return StepUnsat
		}
		if s.shouldRestart() {
			s.restart()
		}
		if s.opts.Reduce != NoReduce && float64(len(s.learnts)) >= s.maxLearnts {
			s.reduceDB()
		}
		// A conflict concludes this iteration; the next decision happens in
		// the next iteration, matching the paper's cycle.
		return StepContinue
	}

	// Forced decisions (injected search state) take precedence.
	for len(s.forced) > 0 {
		l := s.forced[0]
		s.forced = s.forced[1:]
		if s.assigns[l.Var()] != cnf.Undef {
			continue
		}
		s.stats.Decisions++
		s.newDecisionLevel()
		if !s.enqueue(l, crefUndef) {
			panic("sat: forced decision on assigned variable")
		}
		return StepContinue
	}

	v := s.pickBranchVar()
	if v == cnf.NoVar {
		s.status = Sat
		s.model = make([]bool, len(s.assigns))
		for i, val := range s.assigns {
			s.model[i] = val == cnf.True
		}
		return StepSat
	}
	s.stats.Decisions++
	s.newDecisionLevel()
	if !s.enqueue(cnf.MkLit(v, !s.polarity[v]), crefUndef) {
		panic("sat: decision on assigned variable")
	}
	return StepContinue
}

// Solve runs the CDCL search to completion (or budget exhaustion) and
// returns the result. Solve may be called again after budget exhaustion to
// continue the search with a fresh budget window.
func (s *Solver) Solve() Result {
	if s.decisionLevel() == s.rootLevel {
		s.drainImports()
	}
	for {
		switch s.Step() {
		case StepSat:
			return Result{Status: Sat, Model: s.model, Stats: s.stats}
		case StepUnsat:
			return Result{Status: Unsat, Stats: s.stats}
		case StepBudget:
			return Result{Status: Unknown, Stats: s.stats}
		}
	}
}

// --- Restarts ---

func (s *Solver) restartBudget() int64 {
	switch s.opts.Restarts {
	case LubyRestarts:
		return luby(2, s.lubyIndex) * s.opts.RestartBase
	case GlucoseRestarts:
		return 50 // EMA check window; the EMA test drives the decision
	default:
		return 1 << 62
	}
}

func (s *Solver) updateRestartEMA() {
	var lbd float64
	if len(s.learnts) > 0 {
		lbd = float64(s.ca.lbd(s.learnts[len(s.learnts)-1]))
	} else {
		lbd = 1
	}
	// Fast EMA over ~50 conflicts, slow over ~5000.
	s.lbdEMAFast += (lbd - s.lbdEMAFast) / 50
	s.lbdEMASlow += (lbd - s.lbdEMASlow) / 5000
	s.emaConflicts++
}

func (s *Solver) shouldRestart() bool {
	if s.decisionLevel() == s.rootLevel {
		return false
	}
	switch s.opts.Restarts {
	case LubyRestarts:
		s.conflictsUntilRestart--
		return s.conflictsUntilRestart <= 0
	case GlucoseRestarts:
		// Restart when recent conflicts produce markedly worse (higher-LBD)
		// clauses than the long-run average.
		return s.emaConflicts > 50 && s.lbdEMAFast > 1.25*s.lbdEMASlow
	default:
		return false
	}
}

func (s *Solver) restart() {
	s.stats.Restarts++
	if s.trace != nil && s.trace.Enabled() {
		s.trace.Emit(obs.RestartEvent{Restarts: s.stats.Restarts, Conflicts: s.stats.Conflicts})
	}
	s.cancelUntil(s.rootLevel)
	s.lubyIndex++
	s.conflictsUntilRestart = s.restartBudget()
	s.emaConflicts = 0
	s.lbdEMAFast = s.lbdEMASlow
	// Restart boundaries are the import points of the sharing bus: the trail
	// is back at the root, so foreign clauses attach cleanly.
	s.drainImports()
}

// luby returns base^(position in the Luby sequence), the classic restart
// spacing 1,1,2,1,1,2,4,…
func luby(y float64, x int64) int64 {
	size, seq := int64(1), int64(0)
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) / 2
		seq--
		x = x % size
	}
	out := int64(1)
	for ; seq > 0; seq-- {
		out *= int64(y)
	}
	return out
}

// --- Learnt clause DB reduction ---

// reduceDB removes roughly half of the learnt clauses, keeping the most
// valuable ones (by activity or LBD depending on the configured mode) and
// never removing reason clauses of current assignments. When anything was
// removed it finishes with garbageCollect, which compacts the arena and
// purges every dead watcher and learnt-list entry — deleted clauses never
// survive a reduce.
func (s *Solver) reduceDB() {
	candidates := s.redBuf[:0]
	for _, c := range s.learnts {
		if s.ca.deleted(c) {
			continue
		}
		candidates = append(candidates, c)
	}
	switch s.opts.Reduce {
	case ReduceByLBD:
		sort.Slice(candidates, func(i, j int) bool {
			li, lj := s.ca.lbd(candidates[i]), s.ca.lbd(candidates[j])
			if li != lj {
				return li < lj
			}
			return s.ca.act(candidates[i]) > s.ca.act(candidates[j])
		})
	default:
		sort.Slice(candidates, func(i, j int) bool {
			return s.ca.act(candidates[i]) > s.ca.act(candidates[j])
		})
	}
	keep := len(candidates) / 2
	live := s.learnts[:0]
	removed := 0
	for i, c := range candidates {
		protected := s.isReason(c) || s.ca.size(c) == 2 ||
			(s.opts.Reduce == ReduceByLBD && s.ca.lbd(c) <= 2)
		if i < keep || protected {
			live = append(live, c)
			continue
		}
		s.proofDelete(s.ca.lits(c))
		s.ca.delete(c)
		s.stats.Removed++
		removed++
	}
	s.learnts = live
	s.redBuf = candidates[:0]
	s.maxLearnts *= 1.1
	if removed > 0 {
		s.garbageCollect()
	}
}

// isReason reports whether clause c is the antecedent of a current
// assignment. For non-binary clauses propagation keeps the implied literal at
// lits[0]; binary clauses implied through the watcher fast path do not
// maintain that invariant, but they are unconditionally protected from
// reduction by their size, so the positional check stays sufficient.
func (s *Solver) isReason(c cref) bool {
	lits := s.ca.lits(c)
	if len(lits) == 0 {
		return false
	}
	v := lits[0].Var()
	return s.assigns[v] != cnf.Undef && s.reason[v] == c
}
