package sat

import (
	"errors"

	"hyqsat/internal/cnf"
)

// PropagateBench is a reproducible unit-propagation workload over a fixed
// formula, used by BenchmarkPropagate and cmd/benchreport. It replays an
// adversarial decision sequence — the negation of a known model, so each
// decision falsifies literals and drives real watch-list traversal, unit
// implications, and conflicts — against a solver whose learnt-clause database
// was warmed by a budgeted search. Conflicts are handled by undoing the
// offending decision level and moving on (no learning), so every Run performs
// the identical, deterministic sequence of propagations.
type PropagateBench struct {
	s         *Solver
	decisions []cnf.Lit
}

// NewPropagateBench builds the workload: it finds a model of f, then builds a
// fresh solver warmed with up to warmupConflicts conflicts of real search
// (populating the learnt database, including binary learnts for the watcher
// fast path) and rewound to the root level. f must be satisfiable.
func NewPropagateBench(f *cnf.Formula, opts Options, warmupConflicts int64) (*PropagateBench, error) {
	full := opts
	full.MaxConflicts = 0
	full.MaxIterations = 0
	r := New(f.Copy(), full).Solve()
	if r.Status != Sat {
		return nil, errors.New("sat: PropagateBench requires a satisfiable formula")
	}

	warm := full
	warm.MaxConflicts = warmupConflicts
	s := New(f.Copy(), warm)
	if warmupConflicts > 0 {
		s.Solve()
	}
	s.cancelUntil(s.rootLevel)
	s.opts.MaxConflicts = 0

	decisions := make([]cnf.Lit, 0, len(r.Model))
	for v, b := range r.Model {
		decisions = append(decisions, cnf.MkLit(cnf.Var(v), b))
	}
	return &PropagateBench{s: s, decisions: decisions}, nil
}

// Run replays the decision sequence once: every still-unassigned decision
// literal opens a decision level and is propagated to fixed point; a conflict
// undoes just that level. The trail is rewound to the root at the end. Run
// returns the number of propagations performed; it is deterministic and
// allocation-free in steady state (gate-enforced by
// TestPropagateSteadyStateAllocs).
func (b *PropagateBench) Run() int64 {
	s := b.s
	start := s.stats.Propagations
	for _, l := range b.decisions {
		if s.assigns[l.Var()] != cnf.Undef {
			continue
		}
		s.newDecisionLevel()
		s.enqueue(l, crefUndef)
		if s.propagate() != crefUndef {
			s.cancelUntil(s.decisionLevel() - 1)
		}
	}
	s.cancelUntil(s.rootLevel)
	return s.stats.Propagations - start
}

// NumLearntsWarm reports how many learnt clauses the warm-up search left in
// the database (for sanity checks: a zero here means the workload is
// exercising problem clauses only).
func (b *PropagateBench) NumLearntsWarm() int { return len(b.s.learnts) }
