package sat

import (
	"testing"

	"hyqsat/internal/cnf"
)

// stubExchange is a scripted ClauseExchange: Import yields the queued
// clauses once; Export records what the solver offered.
type stubExchange struct {
	inbox    [][]cnf.Lit
	lbds     []int32
	exported [][]cnf.Lit
}

func (x *stubExchange) Export(lits []cnf.Lit, lbd int32) {
	x.exported = append(x.exported, append([]cnf.Lit(nil), lits...))
}

func (x *stubExchange) Import(yield func(lits []cnf.Lit, lbd int32) bool) {
	for i, c := range x.inbox {
		lbd := int32(2)
		if i < len(x.lbds) {
			lbd = x.lbds[i]
		}
		if !yield(c, lbd) {
			break
		}
	}
	x.inbox = nil
}

func TestImportClauseAttachesAndCounts(t *testing.T) {
	f := cnf.New(4)
	f.Add(1, 2, 3)
	f.Add(-1, 2, 4)
	s := New(f, MiniSATOptions())
	x := &stubExchange{inbox: [][]cnf.Lit{
		{cnf.Pos(0), cnf.Pos(3)}, // genuine binary clause
	}}
	s.SetExchange(x)
	r := s.Solve()
	if r.Status != Sat {
		t.Fatalf("status %v", r.Status)
	}
	if r.Stats.Imported != 1 {
		t.Fatalf("imported %d, want 1", r.Stats.Imported)
	}
}

func TestImportConflictingUnitsSettleUnsat(t *testing.T) {
	// Two conflicting foreign units must settle the solve Unsat at the root
	// before any search happens — the adversarial poisoning scenario whose
	// certification-side rejection internal/portfolio tests.
	f := cnf.New(2)
	f.Add(1, 2)
	s := New(f, MiniSATOptions())
	x := &stubExchange{inbox: [][]cnf.Lit{
		{cnf.Pos(0)},
		{cnf.Neg(0)},
	}}
	s.SetExchange(x)
	if r := s.Solve(); r.Status != Unsat {
		t.Fatalf("status %v, want Unsat from conflicting imports", r.Status)
	}
}

func TestImportSkipsForeignVarsAndTautologies(t *testing.T) {
	f := cnf.New(2)
	f.Add(1, 2)
	s := New(f, MiniSATOptions())
	x := &stubExchange{inbox: [][]cnf.Lit{
		{cnf.Pos(0), cnf.Pos(7)},             // variable outside the formula
		{cnf.Pos(0), cnf.Neg(0)},             // tautology
		{cnf.Pos(1), cnf.Pos(1), cnf.Pos(1)}, // collapses to a unit
	}}
	s.SetExchange(x)
	r := s.Solve()
	if r.Status != Sat {
		t.Fatalf("status %v", r.Status)
	}
	if r.Stats.Imported != 1 {
		t.Fatalf("imported %d, want only the deduplicated unit", r.Stats.Imported)
	}
	if !r.Model[1] {
		t.Fatal("imported unit not honoured in the model")
	}
}

func TestExchangeExportsLearnts(t *testing.T) {
	// A formula that forces conflicts must publish learnt clauses.
	f := cnf.New(8)
	// Pigeonhole-ish contradiction fragment: plenty of conflicts.
	f.Add(1, 2)
	f.Add(1, -2)
	f.Add(-1, 3, 4)
	f.Add(-1, 3, -4)
	f.Add(-1, -3, 4)
	f.Add(-1, -3, -4)
	s := New(f, MiniSATOptions())
	x := &stubExchange{}
	s.SetExchange(x)
	if r := s.Solve(); r.Status != Unsat {
		t.Fatalf("status %v", r.Status)
	}
	if len(x.exported) == 0 {
		t.Fatal("no learnt clauses exported")
	}
}

func TestImportHotPathAllocs(t *testing.T) {
	// The inert import paths (tautology, duplicate-heavy clauses) run at
	// every restart of every sharing solver; they must not allocate once the
	// scratch mark table exists.
	if raceEnabled {
		t.Skip("allocation gate skipped under the race detector")
	}
	f := cnf.New(8)
	f.Add(1, 2, 3)
	f.Add(-1, 4, 5)
	s := New(f, MiniSATOptions())
	taut := []cnf.Lit{cnf.Pos(0), cnf.Neg(0), cnf.Pos(1)}
	s.ImportClause(taut, 2) // warm up the lazy mark table
	if avg := testing.AllocsPerRun(1000, func() { s.ImportClause(taut, 2) }); avg != 0 {
		t.Fatalf("tautology import allocates %.1f/op, want 0", avg)
	}
}

func TestImportSteadyStateAllocs(t *testing.T) {
	// Attaching real foreign clauses may only allocate through amortised
	// arena/watch growth — per-import cost must stay far below one
	// steady-state allocation.
	if raceEnabled {
		t.Skip("allocation gate skipped under the race detector")
	}
	f := cnf.New(64)
	f.Add(1, 2, 3)
	s := New(f, MiniSATOptions())
	var i int
	clause := make([]cnf.Lit, 3)
	warm := func() {
		// Cycle through distinct ternary clauses over the formula's variables.
		a := cnf.Var(i % 60)
		clause[0] = cnf.Pos(a)
		clause[1] = cnf.Neg(a + 1)
		clause[2] = cnf.Pos(a + 2)
		i++
		s.ImportClause(clause, 2)
	}
	for j := 0; j < 2000; j++ {
		warm()
	}
	if avg := testing.AllocsPerRun(2000, warm); avg > 0.5 {
		t.Fatalf("steady-state import allocates %.2f/op, want amortised < 0.5", avg)
	}
}

func TestExchangeAttachedNoTrafficBitIdentical(t *testing.T) {
	// With an exchange attached but silent, the search must be bit-identical
	// to an unattached run (determinism satellite, solver side).
	f := cnf.New(30)
	// Deterministic pseudo-random 3-SAT without package deps.
	x := uint64(42)
	next := func(n int) int {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return int(x % uint64(n))
	}
	for i := 0; i < 126; i++ {
		c := make(cnf.Clause, 0, 3)
		for len(c) < 3 {
			l := cnf.MkLit(cnf.Var(next(30)), next(2) == 1)
			if !c.Has(l) && !c.Has(l.Not()) {
				c = append(c, l)
			}
		}
		f.AddClause(c)
	}
	run := func(attach bool) Result {
		s := New(f.Copy(), MiniSATOptions())
		if attach {
			s.SetExchange(&stubExchange{})
		}
		return s.Solve()
	}
	a, b := run(false), run(true)
	if a.Status != b.Status {
		t.Fatalf("status diverged: %v vs %v", a.Status, b.Status)
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats diverged:\n  off: %+v\n  on:  %+v", a.Stats, b.Stats)
	}
	if len(a.Model) != len(b.Model) {
		t.Fatalf("model length diverged")
	}
	for i := range a.Model {
		if a.Model[i] != b.Model[i] {
			t.Fatalf("model diverged at var %d", i)
		}
	}
}

func TestInterruptStopsSearchAndRearms(t *testing.T) {
	// A pre-set interrupt must stop the very next search call with Unknown;
	// clearing it must make the same solver usable again.
	f := cnf.New(30)
	x := uint64(7)
	next := func(n int) int {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return int(x % uint64(n))
	}
	for i := 0; i < 126; i++ {
		c := make(cnf.Clause, 0, 3)
		for len(c) < 3 {
			l := cnf.MkLit(cnf.Var(next(30)), next(2) == 1)
			if !c.Has(l) && !c.Has(l.Not()) {
				c = append(c, l)
			}
		}
		f.AddClause(c)
	}
	s := New(f, MiniSATOptions())
	s.Interrupt()
	if r := s.Solve(); r.Status != Unknown {
		t.Fatalf("interrupted solve returned %v, want Unknown", r.Status)
	}
	if r := s.SolveWithAssumptions(nil); r.Status != Unknown {
		t.Fatalf("interrupted assumption solve returned %v, want Unknown", r.Status)
	}
	s.ClearInterrupt()
	if r := s.Solve(); r.Status == Unknown {
		t.Fatal("cleared solver still refuses to search")
	}
}
