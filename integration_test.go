// Cross-module integration tests: every benchmark family solved end to end
// by all three solvers with agreeing results and verified models; DIMACS
// round-trips through the generator and the solver; the full hybrid pipeline
// (queue → encode → adjust → embed → anneal → classify → feedback) exercised
// on top of generated workloads.
package hyqsat_test

import (
	"context"
	"math/rand"
	"testing"

	"hyqsat/internal/anneal"
	"hyqsat/internal/chimera"
	"hyqsat/internal/cnf"
	"hyqsat/internal/embed"
	"hyqsat/internal/gen"
	"hyqsat/internal/gnb"
	"hyqsat/internal/hyqsat"
	"hyqsat/internal/portfolio"
	"hyqsat/internal/qubo"
	"hyqsat/internal/sat"
	"hyqsat/internal/verify"
)

// cheapFamilies lists the families fast enough for per-commit integration
// testing; the heavy AI/IF families are covered by the benchmarks.
var cheapFamilies = map[string]bool{
	"GC1: Flat150-360": true,
	"CFA":              true,
	"BP":               true,
	"II":               true,
	"CRY: Cmpadd":      true,
}

func TestAllSolversAgreeAcrossFamilies(t *testing.T) {
	for _, fam := range gen.Families() {
		if !cheapFamilies[fam.Name] {
			continue
		}
		fam := fam
		t.Run(fam.Name, func(t *testing.T) {
			inst := fam.Make(0)
			f := inst.Formula

			// Every solve logs a proof so that UNSAT verdicts carry a
			// DRAT/RUP certificate checked below; the hybrid certifies
			// itself against its 3-CNF premise.
			miniRec, kisRec := verify.NewRecorder(), verify.NewRecorder()
			miniSolver := sat.New(f.Copy(), sat.MiniSATOptions())
			miniSolver.SetProofWriter(miniRec)
			mini := miniSolver.Solve()
			kisSolver := sat.New(f.Copy(), sat.KissatOptions())
			kisSolver.SetProofWriter(kisRec)
			kis := kisSolver.Solve()
			o := hyqsat.SimulatorOptions()
			o.Seed = 3
			o.SelfCertify = true
			hy := hyqsat.New(f.Copy(), o).Solve()

			if mini.Status != kis.Status || mini.Status != hy.Status {
				t.Fatalf("solver disagreement: mini=%v kis=%v hyqsat=%v",
					mini.Status, kis.Status, hy.Status)
			}
			if inst.Expected != sat.Unknown && mini.Status != inst.Expected {
				t.Fatalf("expected %v, got %v", inst.Expected, mini.Status)
			}
			if hy.Status != sat.Unknown {
				if hy.CertErr != nil || !hy.Certified {
					t.Fatalf("hyqsat verdict not self-certified: %v", hy.CertErr)
				}
			}
			switch mini.Status {
			case sat.Sat:
				for name, model := range map[string][]bool{
					"minisat": mini.Model, "kissat": kis.Model,
				} {
					if !cnf.FromBools(model).Satisfies(f) {
						t.Fatalf("%s model invalid", name)
					}
				}
				f3, _ := cnf.To3CNF(f)
				if !cnf.FromBools(hy.Model).Satisfies(f3) {
					t.Fatal("hyqsat model invalid")
				}
			case sat.Unsat:
				for name, rec := range map[string]*verify.Recorder{
					"minisat": miniRec, "kissat": kisRec,
				} {
					if err := verify.CheckUnsatProof(f, rec.Proof()); err != nil {
						t.Fatalf("%s UNSAT proof rejected: %v", name, err)
					}
				}
				// Certified portfolio race over the same instance: the
				// winner's verdict must match and carry certification.
				out, err := portfolio.SolveCertified(context.Background(),
					f.Copy(), portfolio.DefaultEntrants(7))
				if err != nil {
					t.Fatalf("certified portfolio: %v", err)
				}
				if out.Result.Status != sat.Unsat || !out.Certified {
					t.Fatalf("certified portfolio: status=%v certified=%v",
						out.Result.Status, out.Certified)
				}
			}
		})
	}
}

func TestDIMACSThroughGeneratorAndSolver(t *testing.T) {
	inst := gen.FlatGraphColoring(60, 140, 5)
	text := cnf.DIMACSString(inst.Formula)
	parsed, err := cnf.ParseDIMACSString(text)
	if err != nil {
		t.Fatal(err)
	}
	r1 := sat.New(inst.Formula.Copy(), sat.MiniSATOptions()).Solve()
	r2 := sat.New(parsed, sat.MiniSATOptions()).Solve()
	if r1.Status != r2.Status {
		t.Fatalf("round trip changed status: %v vs %v", r1.Status, r2.Status)
	}
}

func TestFullPipelineManually(t *testing.T) {
	// Drive the frontend→QA→backend pipeline by hand on a generated
	// workload and check every interface contract along the way.
	inst := gen.SatisfiableRandom3SAT(60, 240, 9)
	f3, _ := cnf.To3CNF(inst.Formula)

	opts := sat.MiniSATOptions()
	s := sat.New(f3, opts)
	for i := 0; i < 5; i++ {
		if st := s.Step(); st != sat.StepContinue {
			t.Fatalf("unexpected early termination: %v", st)
		}
	}

	rng := rand.New(rand.NewSource(9))
	unsat := s.UnsatisfiedClauses()
	if len(unsat) == 0 {
		t.Fatal("no unsatisfied clauses after 5 steps")
	}
	queue := hyqsat.GenerateQueue(f3, cnf.VarAdjacency(f3), s.ClauseScores(),
		unsat, 30, 200, rng)
	clauses := make([]cnf.Clause, len(queue))
	for i, ci := range queue {
		clauses[i] = f3.Clauses[ci]
	}

	enc, err := qubo.Encode(clauses)
	if err != nil {
		t.Fatal(err)
	}
	g := chimera.DWave2000Q()
	res := embed.Fast(enc, g)
	if res.EmbeddedClauses == 0 {
		t.Fatal("nothing embedded")
	}
	sub := enc.Restrict(res.EmbeddedSet)
	if err := embed.Verify(embed.ProblemFromEncoding(sub), g, res.Embedding); err != nil {
		t.Fatal(err)
	}
	sub.AdjustCoefficients()
	norm, d := sub.Poly.Normalized()
	if d <= 0 {
		t.Fatalf("normalizer %v", d)
	}
	is := norm.ToIsing()
	ep := anneal.EmbedIsing(is, res.Embedding, g, anneal.ChainStrengthFor(is))
	sample := anneal.NewSampler(anneal.LongSchedule(), anneal.NoNoise, 9).SampleOnce(ep)

	x := make([]bool, sub.NumNodes())
	for node, v := range sample.NodeValues {
		x[node] = v
	}
	energy := sub.UnitEnergy(x)
	if energy < 0 {
		t.Fatalf("negative unit energy %v", energy)
	}
	class := gnb.DefaultPartition().Classify(energy)
	t.Logf("embedded %d clauses, unit energy %.2f → %v", res.EmbeddedClauses, energy, class)

	// Feed the result back and finish the solve.
	s.SetPhaseHints(sub.AssignmentFromNodes(x, f3.NumVars))
	r := s.Solve()
	if r.Status != sat.Sat {
		t.Fatalf("status %v on a satisfiable instance", r.Status)
	}
	if !cnf.FromBools(r.Model).Satisfies(f3) {
		t.Fatal("final model invalid")
	}
}

func TestHybridSolvesEveryDomainRepresentative(t *testing.T) {
	// One small representative per domain, through the noisy hardware path.
	reps := []*gen.Instance{
		gen.FlatGraphColoring(45, 100, 2),
		gen.CircuitFaultAnalysis(15, 40, 2),
		gen.BlockPlanning(4, 3, 2),
		gen.InductiveInference(10, 3, 30, 2),
		gen.Factorization(10, 2),
		gen.CmpAdd(6, 2),
		gen.SatisfiableRandom3SAT(40, 168, 2),
	}
	for _, inst := range reps {
		o := hyqsat.HardwareOptions()
		o.Seed = 5
		r := hyqsat.New(inst.Formula.Copy(), o).Solve()
		if inst.Expected != sat.Unknown && r.Status != inst.Expected {
			t.Fatalf("%s: got %v want %v", inst.Name, r.Status, inst.Expected)
		}
		if r.Status == sat.Sat {
			f3, _ := cnf.To3CNF(inst.Formula)
			if !cnf.FromBools(r.Model).Satisfies(f3) {
				t.Fatalf("%s: invalid model", inst.Name)
			}
		}
	}
}
