package sat

import "hyqsat/internal/cnf"

// ProofWriter receives the clause events of a CDCL run in the order the
// solver performs them, forming a DRAT/RUP-style proof trace: every clause
// passed to ProofAdd is a reverse-unit-propagation (RUP) consequence of the
// input formula plus the previously added clauses, and ProofDelete marks a
// clause the solver discards from its database. An empty ProofAdd is the
// empty clause — the final step of an unsatisfiability proof.
//
// The literal slices are owned by the solver and only valid for the duration
// of the call; implementations must copy them if they retain them.
//
// Implementations live in internal/verify (an in-memory Recorder and a DRAT
// text serialiser); the hook is defined here so the solver core stays free of
// verification dependencies.
type ProofWriter interface {
	ProofAdd(lits []cnf.Lit)
	ProofDelete(lits []cnf.Lit)
}

// SetProofWriter attaches a proof writer to the solver. Attach it before
// solving starts; clauses learnt earlier are not replayed. A nil writer
// disables proof logging.
//
// Unsatisfiability detected during New (an empty input clause or a root-level
// propagation conflict) produces no proof steps: in that case the empty
// clause follows from the input formula by unit propagation alone, which a
// RUP checker verifies from an empty proof.
func (s *Solver) SetProofWriter(w ProofWriter) { s.proof = w }

// proofAdd logs a derived clause when a proof writer is attached.
func (s *Solver) proofAdd(lits []cnf.Lit) {
	if s.proof != nil {
		s.proof.ProofAdd(lits)
	}
}

// proofDelete logs a deleted clause when a proof writer is attached.
func (s *Solver) proofDelete(lits []cnf.Lit) {
	if s.proof != nil {
		s.proof.ProofDelete(lits)
	}
}
